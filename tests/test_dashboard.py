"""Tests for the observability dashboard: the bench-trajectory store,
flame rollups, journal replay, HTML generation, and the CLI surface."""

from __future__ import annotations

import html.parser
import json
import math

import pytest

from repro.cli import main
from repro.observability.bench import BENCH_SCHEMA_VERSION, stamp_record
from repro.report.dashboard import (
    SECTION_IDS,
    build_dashboard_html,
    collect_run_inputs,
    flame_rollup,
    format_shard_timeline,
    shard_timeline,
    write_dashboard,
)
from repro.report.history import (
    append_record,
    history_path,
    load_history,
    read_history_file,
)


class _WellFormedChecker(html.parser.HTMLParser):
    """Asserts every non-void open tag is closed, in order."""

    VOID = {"meta", "br", "hr", "img", "input", "link", "circle", "line",
            "rect", "polyline", "path"}

    def __init__(self) -> None:
        super().__init__()
        self.stack: list[str] = []

    def handle_starttag(self, tag, attrs):
        if tag not in self.VOID:
            self.stack.append(tag)

    def handle_startendtag(self, tag, attrs):
        pass  # <tag/> is balanced by construction

    def handle_endtag(self, tag):
        if tag in self.VOID:
            return
        assert self.stack, f"closing </{tag}> with nothing open"
        assert self.stack[-1] == tag, (
            f"mismatched </{tag}>; open stack: {self.stack}"
        )
        self.stack.pop()


def assert_well_formed_html(document: str) -> None:
    checker = _WellFormedChecker()
    checker.feed(document)
    checker.close()
    assert checker.stack == [], f"unclosed tags: {checker.stack}"


def _stamped(**fields) -> dict:
    return stamp_record(dict(fields))


# ------------------------------------------------------------------ #
# Run-dir fixture: one of everything the dashboard discovers
# ------------------------------------------------------------------ #


SPANS = [
    {"span_id": 1, "parent_id": None, "name": "experiment",
     "start_s": 0.0, "duration_s": 1.0, "outcome": "ok", "attrs": {}},
    {"span_id": 2, "parent_id": 1, "name": "simulate",
     "start_s": 0.1, "duration_s": 0.4, "outcome": "ok", "attrs": {}},
    {"span_id": 3, "parent_id": 1, "name": "reconstruct",
     "start_s": 0.5, "duration_s": 0.5, "outcome": "ok", "attrs": {}},
    {"span_id": 4, "parent_id": 3, "name": "cluster",
     "start_s": 0.5, "duration_s": 0.2, "outcome": "error", "attrs": {},
     "worker": True},
]

METRICS = {
    "schema_version": 1,
    "counters": [
        {"name": "cache.hit", "labels": {}, "value": 7},
        {"name": "cache.miss", "labels": {}, "value": 3},
        {"name": "retry.attempts", "labels": {"op": "shard"}, "value": 2},
    ],
    "gauges": [{"name": "pool.size", "labels": {}, "value": 42}],
    "histograms": [
        {
            "name": "span.latency",
            "labels": {"span": "reconstruct"},
            "bounds": [0.1, 1.0, 10.0],
            "bucket_counts": [5, 4, 1, 0],
            "sum": 4.2,
            "count": 10,
        }
    ],
}

JOB_EVENTS = [
    {"event": "submitted", "t": 100.0, "workload": "fullscale"},
    {"event": "state_change", "previous": "pending", "state": "running",
     "t": 100.1},
    {"event": "shard_started", "shard": 0, "attempt": 0, "t": 100.2},
    {"event": "shard_succeeded", "shard": 0, "attempt": 0, "t": 100.9},
    {"event": "shard_started", "shard": 1, "attempt": 0, "t": 101.0},
    {"event": "shard_failed", "shard": 1, "attempt": 0,
     "reason": "worker died", "t": 101.2},
    {"event": "shard_started", "shard": 1, "attempt": 1, "t": 101.3},
    {"event": "shard_succeeded", "shard": 1, "attempt": 1, "t": 101.8},
    {"event": "state_change", "previous": "running", "state": "succeeded",
     "t": 101.9},
]

CHAOS = {
    "severities": ["mild", "moderate"],
    "recovery_rate": {"mild": 1.0, "moderate": 0.5},
    "mean_fraction": {"mild": 1.0, "moderate": 0.9},
    "mean_attempts": {"mild": 1.0, "moderate": 2.5},
    "fault_counts": {"mild": 4, "moderate": 9},
    "unhandled_errors": 0,
}


@pytest.fixture()
def run_dir(tmp_path):
    root = tmp_path / "run"
    root.mkdir()
    (root / "trace.jsonl").write_text(
        "".join(json.dumps(span) + "\n" for span in SPANS)
    )
    (root / "metrics.json").write_text(json.dumps(METRICS))
    job = root / "jobs" / "demo"
    job.mkdir(parents=True)
    (job / "job.json").write_text(
        json.dumps(
            {
                "format_version": 1,
                "job_id": "demo",
                "state": "succeeded",
                "quarantined": [],
                "spec": {"workload": "fullscale"},
            }
        )
    )
    (job / "events.jsonl").write_text(
        "".join(json.dumps(event) + "\n" for event in JOB_EVENTS)
    )
    (root / "chaos.json").write_text(json.dumps(CHAOS))
    (root / "conformance.json").write_text(
        json.dumps({"suite": "channel-conformance", "passed": 12, "failed": 0})
    )
    return root


@pytest.fixture()
def repo_root(tmp_path):
    root = tmp_path / "repo"
    root.mkdir()
    for i, sha in enumerate(("aaaa111", "bbbb222", "cccc333")):
        record = _stamped(
            edit_distance_110_speedup=6.0 + i,
            clustering={"speedup": 3.0 + i},
            batched_one_to_many={"speedup": 12.0 + i},
        )
        record["git_sha"] = sha
        append_record(record, "kernels", root=root)
    return root


# ------------------------------------------------------------------ #
# History store
# ------------------------------------------------------------------ #


class TestHistory:
    def test_append_and_load(self, tmp_path):
        record = _stamped(metric=1.5)
        path = append_record(record, "kernels", root=tmp_path)
        assert path == history_path("kernels", tmp_path)
        assert load_history(tmp_path) == {"kernels": [record]}

    def test_append_dedupes_by_sha_and_schema(self, tmp_path):
        first = _stamped(metric=1.0)
        second = _stamped(metric=2.0)
        second["git_sha"] = first["git_sha"]  # same commit, re-run
        append_record(first, "bench", root=tmp_path)
        append_record(second, "bench", root=tmp_path)
        records = load_history(tmp_path)["bench"]
        assert len(records) == 1
        assert records[0]["metric"] == 2.0  # latest measurement wins

    def test_different_shas_accumulate_in_order(self, tmp_path):
        for index, sha in enumerate(("aaa", "bbb", "ccc")):
            record = _stamped(metric=float(index))
            record["git_sha"] = sha
            append_record(record, "bench", root=tmp_path)
        values = [r["metric"] for r in load_history(tmp_path)["bench"]]
        assert values == [0.0, 1.0, 2.0]

    def test_unstamped_record_rejected(self, tmp_path):
        with pytest.raises(AssertionError):
            append_record({"metric": 1.0}, "bench", root=tmp_path)

    def test_read_skips_torn_and_corrupt_lines(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text(
            json.dumps({"a": 1}) + "\n"
            + "not json at all\n"
            + json.dumps({"b": 2}) + "\n"
            + '{"torn": tr'  # crashed mid-append
        )
        assert read_history_file(path) == [{"a": 1}, {"b": 2}]

    def test_read_missing_file_is_empty(self, tmp_path):
        assert read_history_file(tmp_path / "absent.jsonl") == []

    def test_load_history_no_directory(self, tmp_path):
        assert load_history(tmp_path / "nowhere") == {}


# ------------------------------------------------------------------ #
# Flame rollup
# ------------------------------------------------------------------ #


class TestFlameRollup:
    def test_self_time_subtracts_children(self):
        rows = {row["path"]: row for row in flame_rollup(SPANS)}
        experiment = rows["experiment"]
        # experiment ran 1.0s total but its children cover 0.9s.
        assert experiment["total_s"] == pytest.approx(1.0)
        assert experiment["self_s"] == pytest.approx(0.1)
        reconstruct = rows["experiment/reconstruct"]
        assert reconstruct["total_s"] == pytest.approx(0.5)
        assert reconstruct["self_s"] == pytest.approx(0.3)

    def test_paths_nest_and_errors_count(self):
        rows = {row["path"]: row for row in flame_rollup(SPANS)}
        assert "experiment/reconstruct/cluster" in rows
        assert rows["experiment/reconstruct/cluster"]["errors"] == 1

    def test_repeated_spans_aggregate(self):
        records = [
            {"span_id": i, "parent_id": None, "name": "work",
             "duration_s": 0.5, "outcome": "ok"}
            for i in range(4)
        ]
        rows = flame_rollup(records)
        assert len(rows) == 1
        assert rows[0]["count"] == 4
        assert rows[0]["total_s"] == pytest.approx(2.0)
        assert rows[0]["self_s"] == pytest.approx(2.0)

    def test_sorted_by_total_desc(self):
        totals = [row["total_s"] for row in flame_rollup(SPANS)]
        assert totals == sorted(totals, reverse=True)

    def test_empty_records(self):
        assert flame_rollup([]) == []


# ------------------------------------------------------------------ #
# Journal replay
# ------------------------------------------------------------------ #


class TestShardTimeline:
    def test_replay_attempts_and_outcomes(self):
        timeline = shard_timeline(JOB_EVENTS)
        assert [row["shard"] for row in timeline] == [0, 1]
        shard0, shard1 = timeline
        assert shard0["outcome"] == "succeeded"
        assert shard0["attempts"] == 1
        assert shard0["duration_s"] == pytest.approx(0.7)
        assert shard1["outcome"] == "succeeded"  # failed then retried
        assert shard1["attempts"] == 2
        assert shard1["reason"] == "worker died"

    def test_quarantine_and_crash(self):
        events = [
            {"event": "shard_started", "shard": 3, "attempt": 0, "t": 1.0},
            {"event": "shard_quarantined", "shard": 3, "attempts": 3,
             "reason": "poison", "t": 2.0},
            {"event": "chaos_engine_crash", "shard": 5, "t": 3.0},
        ]
        rows = {row["shard"]: row for row in shard_timeline(events)}
        assert rows[3]["outcome"] == "quarantined"
        assert rows[3]["attempts"] == 3
        assert rows[3]["reason"] == "poison"
        assert rows[5]["outcome"] == "crashed"

    def test_checkpoint_replay_marks_shards(self):
        events = [
            {"event": "checkpoints_replayed", "shards": [0, 2], "t": 1.0},
        ]
        rows = {row["shard"]: row for row in shard_timeline(events)}
        assert rows[0]["outcome"] == "succeeded"
        assert rows[0]["replayed"] is True
        assert rows[2]["replayed"] is True

    def test_torn_tail_tolerated_via_reader(self, tmp_path):
        # The CLI and dashboard read events through the torn-tolerant
        # JSONL reader; a SIGKILL mid-append must not lose the replay.
        path = tmp_path / "events.jsonl"
        path.write_text(
            json.dumps(JOB_EVENTS[2]) + "\n"
            + json.dumps(JOB_EVENTS[3]) + "\n"
            + '{"event": "shard_sta'  # torn tail
        )
        timeline = shard_timeline(read_history_file(path))
        assert len(timeline) == 1
        assert timeline[0]["outcome"] == "succeeded"

    def test_format_is_compact_text(self):
        text = format_shard_timeline(shard_timeline(JOB_EVENTS))
        lines = text.splitlines()
        assert lines[0].startswith("shard")
        assert len(lines) == 3  # header + 2 shards
        assert "worker died" in text

    def test_format_empty(self):
        assert "no shard events" in format_shard_timeline([])


# ------------------------------------------------------------------ #
# Dashboard document
# ------------------------------------------------------------------ #


class TestDashboard:
    def test_well_formed_with_all_sections(self, run_dir, repo_root):
        document = build_dashboard_html(run_dir, repo_root)
        assert_well_formed_html(document)
        for section in SECTION_IDS:
            assert f'id="{section}"' in document

    def test_content_reaches_every_section(self, run_dir, repo_root):
        document = build_dashboard_html(run_dir, repo_root)
        # trajectory: the curated kernels metrics with their floors
        assert "edit distance 110 speedup" in document
        assert "all floors honoured" in document
        # flame: nested span paths with self/total bars
        assert "experiment/reconstruct/cluster" in document
        # metrics: family cards and quantile columns
        assert "cache events" in document
        assert "p95" in document
        # run health: the job's shard table, chaos table, conformance
        assert "worker died" in document
        assert "recovered exactly" in document
        assert "channel-conformance" in document

    def test_byte_stable(self, run_dir, repo_root):
        first = build_dashboard_html(run_dir, repo_root)
        second = build_dashboard_html(run_dir, repo_root)
        assert first == second

    def test_self_contained(self, run_dir, repo_root):
        document = build_dashboard_html(run_dir, repo_root)
        for marker in ("http://", "https://", "src=", "<script"):
            assert marker not in document.replace(
                "http://www.w3.org/2000/svg", ""
            ), marker
        assert "<svg" in document
        assert "<style>" in document

    def test_graceful_without_any_inputs(self, tmp_path):
        document = build_dashboard_html(tmp_path, tmp_path)
        assert_well_formed_html(document)
        for section in SECTION_IDS:
            assert f'id="{section}"' in document
        assert document.count("no ") >= 4  # one visible notice per gap

    def test_graceful_with_no_run_dir_at_all(self):
        document = build_dashboard_html(None, None)
        assert_well_formed_html(document)
        for section in SECTION_IDS:
            assert f'id="{section}"' in document

    def test_regression_highlighted(self, tmp_path, repo_root):
        record = _stamped(
            edit_distance_110_speedup=2.0,  # below the 5.0 floor
            clustering={"speedup": 9.0},
            batched_one_to_many={"speedup": 20.0},
        )
        record["git_sha"] = "dddd444"
        append_record(record, "kernels", root=repo_root)
        document = build_dashboard_html(None, repo_root)
        assert "REGRESSION" in document
        assert "floor violation" in document

    def test_serial_throughput_floor_not_flagged(self, tmp_path):
        # workers == 1 records a 1.0x speedup by construction; the
        # conditional floor must not mark it as a regression.
        record = _stamped(
            workers=1, stages={"reconstruct": {"speedup": 1.0}}
        )
        append_record(record, "throughput", root=tmp_path)
        document = build_dashboard_html(None, tmp_path)
        assert "REGRESSION" not in document

    def test_unknown_bench_charts_generic_fields(self, tmp_path):
        record = _stamped(throughput_mbps=12.5, latency_ms=3.0)
        append_record(record, "mystery", root=tmp_path)
        document = build_dashboard_html(None, tmp_path)
        assert "throughput_mbps" in document
        assert "latency_ms" in document

    def test_corrupt_inputs_do_not_fail_the_build(self, run_dir, repo_root):
        (run_dir / "broken.json").write_text("{not json")
        (run_dir / "broken.jsonl").write_text("not a trace\n")
        document = build_dashboard_html(run_dir, repo_root)
        assert_well_formed_html(document)

    def test_write_dashboard_creates_parents(self, tmp_path, run_dir):
        out = write_dashboard(
            tmp_path / "deep" / "nested" / "dash.html", run_dir, None
        )
        assert out.is_file()
        assert "<!DOCTYPE html>" in out.read_text()


class TestDiscovery:
    def test_content_based_classification(self, run_dir):
        inputs = collect_run_inputs(run_dir)
        assert [label for label, _ in inputs.traces] == ["trace.jsonl"]
        assert [label for label, _ in inputs.metrics] == ["metrics.json"]
        assert [job["job_id"] for job in inputs.jobs] == ["demo"]
        assert [label for label, _ in inputs.chaos_sweeps] == ["chaos.json"]
        assert [label for label, _ in inputs.test_summaries] == [
            "conformance.json"
        ]

    def test_job_internal_files_not_misclassified(self, run_dir):
        # events.jsonl lives inside the job dir: it must not be picked
        # up as a trace, and job.json must not look like metrics.
        inputs = collect_run_inputs(run_dir)
        assert all("events" not in label for label, _ in inputs.traces)
        assert all("job.json" not in label for label, _ in inputs.metrics)

    def test_kill_resume_outcome_discovered(self, tmp_path):
        (tmp_path / "kr.json").write_text(
            json.dumps({"bit_identical": True, "crash_exit": 1})
        )
        inputs = collect_run_inputs(tmp_path)
        assert [label for label, _ in inputs.kill_resume] == ["kr.json"]
        document = build_dashboard_html(tmp_path, None)
        assert "resume bit-identical" in document

    def test_missing_run_dir(self, tmp_path):
        inputs = collect_run_inputs(tmp_path / "nope")
        assert inputs.traces == [] and inputs.jobs == []


# ------------------------------------------------------------------ #
# CLI surface
# ------------------------------------------------------------------ #


class TestDashboardCLI:
    def test_report_dashboard_command(self, run_dir, repo_root, tmp_path,
                                      capsys):
        out = tmp_path / "dash.html"
        code = main(
            [
                "report", "dashboard",
                "--run-dir", str(run_dir),
                "--out", str(out),
                "--repo-root", str(repo_root),
            ]
        )
        assert code == 0
        assert "dashboard written to" in capsys.readouterr().out
        document = out.read_text()
        assert_well_formed_html(document)
        for section in SECTION_IDS:
            assert f'id="{section}"' in document

    def test_report_figures_still_works(self, tmp_path, capsys):
        code = main(
            ["report", "figures", str(tmp_path / "figs"), "--clusters", "4"]
        )
        assert code == 0
        assert (tmp_path / "figs" / "index.html").is_file()

    def test_auto_dashboard_after_traced_experiment(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        code = main(
            ["--trace", str(trace), "experiment", "table_1_1"]
        )
        assert code == 0
        dashboard = tmp_path / "dashboard.html"
        assert dashboard.is_file()
        assert "dnasim: dashboard ->" in capsys.readouterr().err
        assert_well_formed_html(dashboard.read_text())

    def test_no_auto_dashboard_without_observability(self, tmp_path,
                                                     monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        code = main(["experiment", "table_1_1"])
        assert code == 0
        assert not (tmp_path / "dashboard.html").exists()

    def test_jobs_status_events_timeline(self, tmp_path, capsys):
        jobs_dir = tmp_path / "jobs"
        code = main(
            [
                "jobs", "submit", "tiny",
                "--jobs-dir", str(jobs_dir),
                "--clusters", "8",
            ]
        )
        assert code == 0
        capsys.readouterr()
        code = main(
            ["jobs", "status", "tiny", "--jobs-dir", str(jobs_dir),
             "--events"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert '"state": "succeeded"' in out  # the JSON document
        lines = out.splitlines()
        header = next(line for line in lines if line.startswith("shard"))
        assert "attempts" in header and "outcome" in header
        assert any("succeeded" in line for line in lines)

    def test_jobs_status_without_events_unchanged(self, tmp_path, capsys):
        jobs_dir = tmp_path / "jobs"
        main(["jobs", "submit", "tiny", "--jobs-dir", str(jobs_dir),
              "--clusters", "8"])
        capsys.readouterr()
        main(["jobs", "status", "tiny", "--jobs-dir", str(jobs_dir)])
        out = capsys.readouterr().out
        assert "shard  attempts" not in out
        json.loads(out)  # pure JSON document, nothing appended

    def test_chaos_json_out(self, tmp_path, capsys):
        out_file = tmp_path / "chaos.json"
        code = main(
            [
                "chaos", "--clusters", "10", "--trials", "1",
                "--severities", "mild", "--json-out", str(out_file),
            ]
        )
        assert code == 0
        document = json.loads(out_file.read_text())
        assert document["severities"] == ["mild"]
        assert "recovery_rate" in document
        # The dashboard discovers the written outcome as a chaos sweep.
        inputs = collect_run_inputs(tmp_path)
        assert [label for label, _ in inputs.chaos_sweeps] == ["chaos.json"]


class TestSweepSection:
    @pytest.fixture()
    def sweep_run_dir(self, tmp_path):
        from repro.scenarios import SweepSpec, run_sweep

        root = tmp_path / "run"
        spec = SweepSpec(
            name="dash-sweep",
            seed=2,
            n_clusters=6,
            axes={"coverage": (4.0,), "algorithm": ("majority", "bma")},
        )
        run_sweep(spec, root / "sweeps" / "dash")
        return root

    def test_sweep_block_renders(self, sweep_run_dir, tmp_path):
        document = build_dashboard_html(sweep_run_dir, tmp_path)
        assert_well_formed_html(document)
        assert 'id="sweep"' in document
        assert "dash-sweep" in document
        assert "cells declared" in document
        assert "majority" in document and "bma" in document

    def test_sweep_section_byte_stable(self, sweep_run_dir, tmp_path):
        first = build_dashboard_html(sweep_run_dir, tmp_path)
        assert first == build_dashboard_html(sweep_run_dir, tmp_path)

    def test_empty_state_message(self, tmp_path):
        document = build_dashboard_html(tmp_path, tmp_path)
        assert "no sweep results found" in document

    def test_orphan_cell_records_get_their_own_block(
        self, sweep_run_dir, tmp_path
    ):
        manifest = sweep_run_dir / "sweeps" / "dash" / "sweep.json"
        manifest.unlink()
        document = build_dashboard_html(sweep_run_dir, tmp_path)
        assert_well_formed_html(document)
        assert "dash-sweep (records only)" in document
