"""Unit tests for the sensitivity-analysis harness."""

from __future__ import annotations

import pytest

from repro.analysis.sensitivity import (
    make_references,
    simulate_uniform,
    sweep_error_and_coverage,
    sweep_spatial,
)
from repro.core.spatial import AShapedSpatial, VShapedSpatial
from repro.reconstruct.bma import BMALookahead


class TestHelpers:
    def test_make_references_deterministic(self):
        assert make_references(5, 20, seed=1) == make_references(5, 20, seed=1)

    def test_simulate_uniform_error_rate(self):
        references = make_references(20, 110, seed=0)
        pool = simulate_uniform(references, 0.09, 3, seed=0)
        assert pool.mean_coverage == 3.0
        from repro.analysis.error_stats import ErrorStatistics

        statistics = ErrorStatistics()
        statistics.tally_pool(pool)
        assert statistics.aggregate_error_rate() == pytest.approx(0.09, rel=0.2)


class TestSweeps:
    def test_error_coverage_grid_shape(self):
        points = sweep_error_and_coverage(
            [BMALookahead()],
            error_rates=[0.03, 0.09],
            coverages=[3, 5],
            n_strands=20,
            seed=0,
        )
        assert len(points) == 4
        assert {point.error_rate for point in points} == {0.03, 0.09}

    def test_accuracy_decreases_with_error_rate(self):
        points = sweep_error_and_coverage(
            [BMALookahead()],
            error_rates=[0.03, 0.15],
            coverages=[5],
            n_strands=40,
            seed=0,
        )
        low, high = points[0].report, points[1].report
        assert low.per_character > high.per_character

    def test_accuracy_increases_with_coverage(self):
        points = sweep_error_and_coverage(
            [BMALookahead()],
            error_rates=[0.09],
            coverages=[3, 10],
            n_strands=40,
            seed=0,
        )
        sparse, dense = points[0].report, points[1].report
        assert dense.per_character > sparse.per_character

    def test_spatial_sweep_returns_curves(self):
        points, curves = sweep_spatial(
            [BMALookahead()],
            {"A": AShapedSpatial(), "V": VShapedSpatial()},
            n_strands=20,
            seed=0,
        )
        assert len(points) == 2
        assert len(curves) == 2
        assert all(sum(curve.hamming_curve) >= 0 for curve in curves)

    def test_spatial_sweep_without_curves(self):
        points, curves = sweep_spatial(
            [BMALookahead()],
            {"A": AShapedSpatial()},
            n_strands=10,
            seed=0,
            with_curves=False,
        )
        assert points and not curves
