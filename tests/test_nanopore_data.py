"""Calibration tests for the synthetic Nanopore wetlab substitute.

These assert the dataset-level statistics the paper reports for the real
Microsoft Nanopore dataset (DESIGN.md section 1's substitution table).
"""

from __future__ import annotations

import pytest

from repro.analysis.error_stats import ErrorStatistics
from repro.data.nanopore import (
    NanoporeParameters,
    ground_truth_coverage,
    ground_truth_model,
    make_nanopore_dataset,
)


@pytest.fixture(scope="module")
def measured(request):
    pool = request.getfixturevalue("nanopore_pool")
    statistics = ErrorStatistics()
    statistics.tally_pool(pool, max_copies_per_cluster=4)
    return pool, statistics


class TestDatasetShape:
    def test_default_strand_length(self, measured):
        pool, _stats = measured
        assert all(len(cluster.reference) == 110 for cluster in pool)

    def test_mean_coverage_near_paper(self, measured):
        pool, _stats = measured
        assert pool.mean_coverage == pytest.approx(26.97, rel=0.2)

    def test_constant_coverage_override(self):
        pool = make_nanopore_dataset(
            n_clusters=5, seed=0, constant_coverage=3
        )
        assert pool.coverages() == [3] * 5

    def test_seed_reproducibility(self):
        first = make_nanopore_dataset(n_clusters=5, seed=11)
        second = make_nanopore_dataset(n_clusters=5, seed=11)
        assert first.references == second.references
        assert first.all_copies() == second.all_copies()

    def test_different_seeds_differ(self):
        first = make_nanopore_dataset(n_clusters=5, seed=1)
        second = make_nanopore_dataset(n_clusters=5, seed=2)
        assert first.references != second.references


class TestErrorCalibration:
    def test_aggregate_error_near_paper(self, measured):
        _pool, stats = measured
        # Paper: ~5.9% aggregate error.
        assert stats.aggregate_error_rate() == pytest.approx(0.059, rel=0.2)

    def test_terminal_skew_end_twice_start(self, measured):
        _pool, stats = measured
        rates = stats.positional_error_rates()
        start = sum(rates[:3]) / 3
        end = sum(rates[-3:]) / 3
        assert end / start == pytest.approx(2.0, rel=0.4)

    def test_long_deletion_statistics(self, measured):
        _pool, stats = measured
        # Paper: p_ld = 0.33%, mean length 2.17.
        assert stats.long_deletion_rate() == pytest.approx(0.0033, rel=0.5)
        assert stats.mean_long_deletion_length() == pytest.approx(2.17, rel=0.2)

    def test_transition_bias_dominates_substitutions(self, measured):
        _pool, stats = measured
        matrix = stats.substitution_matrix()
        assert matrix["T"]["C"] > matrix["T"]["A"]
        assert matrix["A"]["G"] > matrix["A"]["C"]

    def test_top_second_order_errors_are_single_base(self, measured):
        _pool, stats = measured
        for key, _count in stats.top_second_order_errors(10):
            kind, base, replacement = key
            assert kind in ("insertion", "deletion", "substitution")
            assert len(base) <= 1 and len(replacement) <= 1


class TestModelConstruction:
    def test_ground_truth_model_includes_unmodelled_effects(self):
        model = ground_truth_model()
        assert model.homopolymer_factor > 1.0
        assert model.burst_rate > 0.0
        assert len(model.second_order_errors) == 5

    def test_ground_truth_coverage_has_erasures(self, rng):
        coverage = ground_truth_coverage(mean_coverage=20.0)
        draws = coverage.draw(3000, rng)
        assert 0 in draws or NanoporeParameters().erasure_probability < 0.01

    def test_parameters_are_overridable(self):
        parameters = NanoporeParameters(substitution_rate=0.0, deletion_rate=0.0,
                                        insertion_rate=0.0, long_deletion_rate=0.0,
                                        burst_rate=0.0)
        model = ground_truth_model(parameters)
        assert model.substitution_rate["A"] == 0.0
