"""Unit tests for repro.core.alphabet."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.alphabet import (
    BASES,
    COMPLEMENT,
    TRANSITION,
    AlphabetError,
    base_counts,
    bits_from_strand,
    gc_content,
    homopolymer_mask,
    homopolymer_runs,
    is_valid_strand,
    kmer_counts,
    longest_homopolymer,
    random_strand,
    random_strand_gc_balanced,
    reverse_complement,
    strand_from_bits,
    substitute_base,
    validate_strand,
)

dna = st.text(alphabet="ACGT", max_size=64)


class TestValidation:
    def test_valid_strand_passes_through(self):
        assert validate_strand("ACGT") == "ACGT"

    def test_empty_strand_is_valid(self):
        assert validate_strand("") == ""

    def test_invalid_base_raises_with_position(self):
        with pytest.raises(AlphabetError, match="position 2"):
            validate_strand("ACXT")

    def test_lowercase_rejected(self):
        with pytest.raises(AlphabetError):
            validate_strand("acgt")

    @given(dna)
    def test_is_valid_strand_matches_validate(self, strand):
        assert is_valid_strand(strand)
        validate_strand(strand)

    def test_is_valid_strand_false_for_bad_char(self):
        assert not is_valid_strand("ACGU")


class TestRandomStrands:
    def test_random_strand_length(self, rng):
        assert len(random_strand(37, rng)) == 37

    def test_random_strand_zero_length(self, rng):
        assert random_strand(0, rng) == ""

    def test_random_strand_negative_length_raises(self, rng):
        with pytest.raises(ValueError):
            random_strand(-1, rng)

    def test_random_strand_uses_all_bases(self, rng):
        strand = random_strand(400, rng)
        assert set(strand) == set(BASES)

    def test_random_strand_deterministic_per_seed(self):
        first = random_strand(50, random.Random(5))
        second = random_strand(50, random.Random(5))
        assert first == second

    def test_gc_balanced_strand_within_tolerance(self, rng):
        strand = random_strand_gc_balanced(100, rng, tolerance=0.05)
        assert abs(gc_content(strand) - 0.5) <= 0.05

    def test_gc_balanced_short_strand_terminates(self, rng):
        strand = random_strand_gc_balanced(3, rng)
        assert len(strand) == 3

    def test_gc_balanced_invalid_ratio_raises(self, rng):
        with pytest.raises(ValueError):
            random_strand_gc_balanced(10, rng, gc_ratio=1.5)

    def test_gc_balanced_empty(self, rng):
        assert random_strand_gc_balanced(0, rng) == ""


class TestGCContent:
    @pytest.mark.parametrize(
        "strand, expected",
        [("", 0.0), ("AT", 0.0), ("GC", 1.0), ("ACGT", 0.5), ("GGGA", 0.75)],
    )
    def test_gc_content(self, strand, expected):
        assert gc_content(strand) == pytest.approx(expected)


class TestComplement:
    def test_complement_table_is_involution(self):
        for base in BASES:
            assert COMPLEMENT[COMPLEMENT[base]] == base

    def test_transition_table_is_involution(self):
        for base in BASES:
            assert TRANSITION[TRANSITION[base]] == base

    def test_reverse_complement_example(self):
        assert reverse_complement("AACG") == "CGTT"

    @given(dna)
    def test_reverse_complement_is_involution(self, strand):
        assert reverse_complement(reverse_complement(strand)) == strand

    @given(dna)
    def test_reverse_complement_preserves_gc(self, strand):
        assert gc_content(reverse_complement(strand)) == pytest.approx(
            gc_content(strand)
        )


class TestHomopolymers:
    def test_runs_simple(self):
        assert homopolymer_runs("AAACCG") == [(0, 3, "A"), (3, 2, "C")]

    def test_runs_respect_min_length(self):
        assert homopolymer_runs("AAACCG", min_length=3) == [(0, 3, "A")]

    def test_runs_empty_strand(self):
        assert homopolymer_runs("") == []

    def test_runs_invalid_min_length(self):
        with pytest.raises(ValueError):
            homopolymer_runs("AAA", min_length=0)

    def test_longest_homopolymer(self):
        assert longest_homopolymer("ATTTGCC") == 3

    def test_longest_homopolymer_empty(self):
        assert longest_homopolymer("") == 0

    def test_longest_homopolymer_single(self):
        assert longest_homopolymer("ACGT") == 1

    def test_mask_marks_runs(self):
        assert homopolymer_mask("AAC") == [True, True, False]

    @given(dna)
    def test_mask_consistent_with_runs(self, strand):
        mask = homopolymer_mask(strand)
        covered = sum(length for _s, length, _b in homopolymer_runs(strand))
        assert sum(mask) == covered


class TestEncodingHelpers:
    def test_base_counts_all_keys(self):
        counts = base_counts("AAG")
        assert counts == {"A": 2, "C": 0, "G": 1, "T": 0}

    def test_substitute_base_excludes_self(self, rng):
        for _ in range(40):
            assert substitute_base("A", rng) != "A"

    def test_substitute_base_with_self_allowed(self, rng):
        draws = {substitute_base("A", rng, exclude_self=False) for _ in range(200)}
        assert draws == set(BASES)

    def test_kmer_counts(self):
        assert kmer_counts(["ACGA"], 2) == {"AC": 1, "CG": 1, "GA": 1}

    def test_kmer_counts_multiple_sequences(self):
        counts = kmer_counts(["ACA", "ACA"], 2)
        assert counts == {"AC": 2, "CA": 2}

    def test_kmer_counts_invalid_k(self):
        with pytest.raises(ValueError):
            kmer_counts(["ACGT"], 0)

    def test_strand_from_bits_example(self):
        assert strand_from_bits([0, 1, 1, 0, 1, 1, 0, 0]) == "CGTA"

    def test_strand_from_bits_odd_length_raises(self):
        with pytest.raises(ValueError):
            strand_from_bits([0, 1, 1])

    def test_strand_from_bits_bad_bit_raises(self):
        with pytest.raises(ValueError):
            strand_from_bits([0, 2])

    @given(st.lists(st.integers(0, 1), max_size=40).filter(lambda b: len(b) % 2 == 0))
    def test_bits_roundtrip(self, bits):
        assert bits_from_strand(strand_from_bits(bits)) == bits
