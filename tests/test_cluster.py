"""Unit and behavioural tests for the clustering subsystem."""

from __future__ import annotations

import random

import pytest

from repro.cluster.greedy import GreedyClusterer
from repro.cluster.pseudo import (
    cluster_size_histogram,
    clustering_accuracy,
    flatten_with_labels,
    rebuild_pool,
    shuffle_reads,
)
from repro.cluster.qgram_index import QGramIndex, build_index, qgrams
from repro.core.errors import ErrorModel
from repro.core.simulator import Simulator
from repro.core.coverage import ConstantCoverage


class TestQGrams:
    def test_qgrams_enumerates_substrings(self):
        assert qgrams("ACGTA", 3) == {"ACG", "CGT", "GTA"}

    def test_short_sequence_is_its_own_gram(self):
        assert qgrams("AC", 5) == {"AC"}

    def test_empty_sequence_no_grams(self):
        assert qgrams("", 3) == set()

    def test_invalid_q_raises(self):
        with pytest.raises(ValueError):
            qgrams("ACGT", 0)


class TestQGramIndex:
    def test_identical_reads_share_buckets(self):
        index = QGramIndex(q=4, bands=2)
        index.add(0, "ACGTACGTACGT")
        assert 0 in index.candidates("ACGTACGTACGT")

    def test_similar_reads_usually_collide(self, rng):
        from repro.core.alphabet import random_strand

        index = QGramIndex(q=8, bands=4)
        hits = 0
        for read_index in range(50):
            reference = random_strand(110, rng)
            # A noisy copy: one deletion.
            position = rng.randrange(len(reference))
            noisy = reference[:position] + reference[position + 1 :]
            index.add(read_index, reference)
            if read_index in index.candidates(noisy):
                hits += 1
        assert hits >= 45  # near-certain collision for one edit

    def test_unrelated_reads_rarely_collide(self, rng):
        from repro.core.alphabet import random_strand

        index = QGramIndex(q=11, bands=4)
        index.add(0, random_strand(110, rng))
        collisions = sum(
            1
            for _ in range(50)
            if 0 in index.candidates(random_strand(110, rng))
        )
        assert collisions <= 5

    def test_signature_deterministic_across_instances(self):
        first = QGramIndex(q=5, bands=3).signature("ACGTACGTAA")
        second = QGramIndex(q=5, bands=3).signature("ACGTACGTAA")
        assert first == second

    def test_candidate_pairs_deduplicated(self):
        index = build_index(["ACGTACGT", "ACGTACGT", "ACGTACGT"], q=4, bands=3)
        pairs = list(index.candidate_pairs())
        assert len(pairs) == len(set(pairs)) == 3

    def test_len_counts_reads(self):
        index = build_index(["ACGT", "TTTT"], q=2)
        assert len(index) == 2

    def test_invalid_bands_raises(self):
        with pytest.raises(ValueError):
            QGramIndex(bands=0)

    def test_empty_reads_never_collide(self):
        """Regression: empty reads used to sign bucket 0 in every band,
        colliding with each other and with any read whose min-hash was
        genuinely 0.  They now carry a sentinel signature and are never
        bucketed."""
        from repro.cluster.qgram_index import EMPTY_SIGNATURE

        index = QGramIndex(q=4, bands=3)
        assert index.signature("") == [EMPTY_SIGNATURE] * 3
        index.add(0, "")
        index.add(1, "")
        index.add(2, "ACGTACGTACGT")
        assert index.candidates("") == set()
        assert 0 not in index.candidates("ACGTACGTACGT")
        assert len(index) == 3  # still counted as added reads
        # No bucket anywhere contains the empty reads.
        assert all(
            0 not in members and 1 not in members
            for band in index._buckets
            for members in band.values()
        )
        assert list(index.candidate_pairs()) == []

    def test_short_reads_still_indexed(self):
        index = QGramIndex(q=8, bands=2)
        index.add(0, "ACG")  # shorter than q: the read is its own gram
        assert 0 in index.candidates("ACG")


class TestGreedyClusterer:
    @pytest.fixture(scope="class")
    def noisy_reads(self):
        simulator = Simulator(
            ErrorModel.uniform(0.05), ConstantCoverage(6), seed=21
        )
        pool = simulator.simulate_random(30, 110)
        reads = flatten_with_labels(pool)
        return pool, shuffle_reads(reads, random.Random(5))

    def test_recovers_clusters_with_high_purity(self, noisy_reads):
        _pool, reads = noisy_reads
        result = GreedyClusterer().cluster([read.sequence for read in reads])
        accuracy = clustering_accuracy(result.assignments, reads)
        assert accuracy > 0.95

    def test_cluster_count_close_to_truth(self, noisy_reads):
        pool, reads = noisy_reads
        result = GreedyClusterer().cluster([read.sequence for read in reads])
        # Mild over-fragmentation is inherent to greedy clustering (an
        # outlier read can found a cluster the index never re-links).
        assert len(pool) <= result.n_clusters <= len(pool) * 1.25

    def test_index_prunes_comparisons(self, noisy_reads):
        _pool, reads = noisy_reads
        result = GreedyClusterer().cluster([read.sequence for read in reads])
        n_reads = len(reads)
        assert result.comparisons < n_reads * (n_reads - 1) // 4

    def test_empty_input(self):
        result = GreedyClusterer().cluster([])
        assert result.assignments == []
        assert result.n_clusters == 0

    def test_cluster_sequences_partition_input(self, noisy_reads):
        _pool, reads = noisy_reads
        sequences = [read.sequence for read in reads]
        clusters = GreedyClusterer().cluster_sequences(sequences)
        assert sorted(sum(clusters, [])) == sorted(sequences)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            GreedyClusterer(distance_threshold=-1)


class TestPseudoHelpers:
    def test_flatten_with_labels(self, small_pool):
        reads = flatten_with_labels(small_pool)
        assert len(reads) == small_pool.total_copies
        assert reads[0].true_cluster == 0

    def test_clustering_accuracy_perfect(self, small_pool):
        reads = flatten_with_labels(small_pool)
        assignments = [read.true_cluster for read in reads]
        assert clustering_accuracy(assignments, reads) == 1.0

    def test_clustering_accuracy_single_blob(self, small_pool):
        reads = flatten_with_labels(small_pool)
        assignments = [0] * len(reads)
        # The blob maps to the biggest true cluster (4 of 6 reads).
        assert clustering_accuracy(assignments, reads) == pytest.approx(4 / 6)

    def test_clustering_accuracy_length_mismatch(self, small_pool):
        reads = flatten_with_labels(small_pool)
        with pytest.raises(ValueError):
            clustering_accuracy([0], reads)

    def test_size_histogram(self):
        assert cluster_size_histogram([0, 0, 1, 2, 2, 2]) == {1: 1, 2: 1, 3: 1}

    def test_rebuild_pool_routes_copies(self, small_pool):
        reads = flatten_with_labels(small_pool)
        assignments = [read.true_cluster for read in reads]
        rebuilt = rebuild_pool(assignments, reads, small_pool)
        assert rebuilt.references == small_pool.references
        assert rebuilt[0].coverage == small_pool[0].coverage
