"""Regression tests for the experiment-context cache's corruption handling.

A truncated or foreign cache file used to be able to raise
``UnpicklingError``/``EOFError`` into the middle of an experiment; the
contract now is that *any* unreadable payload is logged, discarded, and
treated as a cache miss — the cache can never wedge a session.
"""

from __future__ import annotations

import io
import pickle

import pytest

from repro.experiments import cache
from repro.observability import configure_logging


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv(cache.CACHE_DIR_ENV, str(tmp_path))
    monkeypatch.delenv(cache.CACHE_ENABLED_ENV, raising=False)
    return tmp_path


def _store(small_pool):
    from repro.analysis.error_stats import ErrorStatistics

    statistics = ErrorStatistics()
    statistics.tally_pool(small_pool, None)
    path = cache.store_context_artifacts(
        len(small_pool), 0, None, small_pool, statistics
    )
    assert path is not None
    return path


class TestCorruptEntriesAreMisses:
    def test_truncated_pickle_is_a_miss(self, cache_dir, small_pool):
        path = _store(small_pool)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        assert cache.load_context_artifacts(len(small_pool), 0, None) is None
        assert not path.exists()  # discarded, not left to fail again

    def test_garbage_bytes_are_a_miss(self, cache_dir, small_pool):
        path = _store(small_pool)
        path.write_bytes(b"this was never a pickle")
        assert cache.load_context_artifacts(len(small_pool), 0, None) is None
        assert not path.exists()

    def test_empty_file_is_a_miss(self, cache_dir, small_pool):
        path = _store(small_pool)
        path.write_bytes(b"")
        assert cache.load_context_artifacts(len(small_pool), 0, None) is None
        assert not path.exists()

    def test_wrong_payload_shape_is_a_stale_miss(self, cache_dir, small_pool):
        path = _store(small_pool)
        path.write_bytes(pickle.dumps({"pool": "not a pool"}))
        assert cache.load_context_artifacts(len(small_pool), 0, None) is None
        assert not path.exists()

    def test_unreadable_event_is_logged(self, cache_dir, small_pool):
        path = _store(small_pool)
        path.write_bytes(b"\x80garbage")
        stream = io.StringIO()
        configure_logging(level="warning", stream=stream)
        try:
            assert (
                cache.load_context_artifacts(len(small_pool), 0, None) is None
            )
        finally:
            configure_logging()  # restore defaults for later tests
        assert "cache.unreadable_discard" in stream.getvalue()

    def test_miss_then_store_then_hit_recovers(self, cache_dir, small_pool):
        path = _store(small_pool)
        path.write_bytes(b"junk")
        assert cache.load_context_artifacts(len(small_pool), 0, None) is None
        _store(small_pool)
        loaded = cache.load_context_artifacts(len(small_pool), 0, None)
        assert loaded is not None
        pool, statistics = loaded
        assert pool.references == small_pool.references
