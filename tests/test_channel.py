"""Unit and statistical tests for repro.core.channel."""

from __future__ import annotations

import random

import pytest

from repro.core.channel import Channel
from repro.core.coverage import ConstantCoverage
from repro.core.errors import ErrorModel, SecondOrderError
from repro.core.spatial import HistogramSpatial
from repro.core.strand import StrandPool


def make_channel(model: ErrorModel, seed: int = 0) -> Channel:
    return Channel(model, random.Random(seed))


class TestNoiselessChannel:
    def test_zero_rates_identity(self):
        channel = make_channel(ErrorModel.naive(0.0, 0.0, 0.0))
        assert channel.transmit("ACGTACGT") == "ACGTACGT"

    def test_empty_strand(self):
        channel = make_channel(ErrorModel.naive(0.1, 0.1, 0.1))
        assert channel.transmit("") == ""


class TestPureErrorTypes:
    def test_pure_deletion_only_shortens(self):
        channel = make_channel(ErrorModel.naive(0.0, 0.3, 0.0))
        reference = "ACGT" * 25
        for _ in range(20):
            copy = channel.transmit(reference)
            assert len(copy) <= len(reference)
            # A pure-deletion copy is a subsequence of the reference.
            iterator = iter(reference)
            assert all(base in iterator for base in copy)

    def test_pure_insertion_only_lengthens(self):
        channel = make_channel(ErrorModel.naive(0.3, 0.0, 0.0))
        reference = "ACGT" * 25
        for _ in range(20):
            copy = channel.transmit(reference)
            assert len(copy) >= len(reference)
            iterator = iter(copy)
            assert all(base in iterator for base in reference)

    def test_pure_substitution_preserves_length(self):
        channel = make_channel(ErrorModel.naive(0.0, 0.0, 0.3))
        reference = "ACGT" * 25
        for _ in range(20):
            assert len(channel.transmit(reference)) == len(reference)

    def test_substitution_rate_statistical(self):
        channel = make_channel(ErrorModel.naive(0.0, 0.0, 0.1))
        reference = "ACGT" * 50
        mismatches = 0
        total = 0
        for _ in range(100):
            copy = channel.transmit(reference)
            mismatches += sum(1 for a, b in zip(reference, copy) if a != b)
            total += len(reference)
        assert mismatches / total == pytest.approx(0.1, rel=0.15)


class TestLongDeletions:
    def test_long_deletion_removes_runs(self):
        model = ErrorModel(
            insertion_rate=0.0,
            deletion_rate=0.0,
            substitution_rate=0.0,
            long_deletion_rate=0.05,
            long_deletion_lengths={3: 1.0},
        )
        channel = make_channel(model)
        reference = "ACGT" * 30
        deltas = [
            len(reference) - len(channel.transmit(reference)) for _ in range(50)
        ]
        # Runs are 3 long except when truncated at the strand end, so a
        # non-multiple of 3 may appear at most once per transmission.
        assert any(delta >= 3 for delta in deltas)
        full_runs = [delta for delta in deltas if delta % 3 == 0]
        assert len(full_runs) >= len(deltas) * 0.6


class TestSpatialWeighting:
    def test_errors_follow_spatial_distribution(self):
        weights = [0.0] * 50
        weights[10] = 50.0  # all error mass on position 10
        model = ErrorModel(
            insertion_rate=0.0,
            deletion_rate=0.0,
            substitution_rate=0.02,
        ).with_spatial(HistogramSpatial(weights))
        channel = make_channel(model)
        reference = "A" * 50
        errors_at_10 = 0
        errors_elsewhere = 0
        for _ in range(300):
            copy = channel.transmit(reference)
            for position, (a, b) in enumerate(zip(reference, copy)):
                if a != b:
                    if position == 10:
                        errors_at_10 += 1
                    else:
                        errors_elsewhere += 1
        assert errors_at_10 > 0
        assert errors_elsewhere == 0


class TestSecondOrderErrors:
    def test_second_order_substitution_applies_specific_replacement(self):
        model = ErrorModel.naive(0.0, 0.0, 0.0).with_second_order(
            (SecondOrderError("substitution", "A", "G", 0.5),)
        )
        channel = make_channel(model)
        copies = [channel.transmit("AAAA") for _ in range(50)]
        observed = set("".join(copies))
        assert observed <= {"A", "G"}
        assert "G" in observed

    def test_second_order_deletion_only_hits_its_base(self):
        model = ErrorModel.naive(0.0, 0.0, 0.0).with_second_order(
            (SecondOrderError("deletion", "C", "", 0.5),)
        )
        channel = make_channel(model)
        reference = "CACA" * 10
        for _ in range(30):
            copy = channel.transmit(reference)
            assert copy.count("A") == reference.count("A")

    def test_second_order_insertion_inserts_specific_base(self):
        model = ErrorModel.naive(0.0, 0.0, 0.0).with_second_order(
            (SecondOrderError("insertion", "", "T", 0.5),)
        )
        channel = make_channel(model)
        copy = channel.transmit("AAAAAAAAAA")
        extra = [base for base in copy if base != "A"]
        assert set(extra) <= {"T"}


class TestBurstErrors:
    def test_bursts_remove_or_corrupt_runs(self):
        model = ErrorModel(
            insertion_rate=0.0,
            deletion_rate=0.0,
            substitution_rate=0.0,
            burst_rate=0.02,
            burst_min_length=5,
            burst_deletion_fraction=1.0,  # always delete
        )
        channel = make_channel(model)
        reference = "ACGT" * 30
        deltas = [
            len(reference) - len(channel.transmit(reference))
            for _ in range(100)
        ]
        bursts = [delta for delta in deltas if delta > 0]
        assert bursts, "expected at least one burst in 100 transmissions"
        assert all(delta >= 5 or delta == 0 for delta in deltas)


class TestHomopolymerFactor:
    def test_homopolymer_positions_more_error_prone(self):
        model = ErrorModel(
            insertion_rate=0.0,
            deletion_rate=0.0,
            substitution_rate=0.05,
            homopolymer_factor=4.0,
        )
        channel = make_channel(model)
        # First half homopolymer, second half alternating.
        reference = "A" * 40 + "CGTG" * 10
        homopolymer_errors = 0
        other_errors = 0
        for _ in range(300):
            copy = channel.transmit(reference)
            for position, (a, b) in enumerate(zip(reference, copy)):
                if a != b:
                    if position < 40:
                        homopolymer_errors += 1
                    else:
                        other_errors += 1
        assert homopolymer_errors > 2 * other_errors


class TestPoolGeneration:
    def test_transmit_pool_shapes(self):
        channel = make_channel(ErrorModel.naive(0.01, 0.01, 0.01))
        pool = channel.transmit_pool(["ACGT" * 10, "TGCA" * 10], ConstantCoverage(3))
        assert isinstance(pool, StrandPool)
        assert len(pool) == 2
        assert pool.coverages() == [3, 3]

    def test_transmit_many_negative_raises(self):
        channel = make_channel(ErrorModel.naive(0.0, 0.0, 0.0))
        with pytest.raises(ValueError):
            channel.transmit_many("ACGT", -1)

    def test_same_seed_same_output(self):
        model = ErrorModel.naive(0.05, 0.05, 0.05)
        first = Channel(model, random.Random(42)).transmit_many("ACGT" * 20, 5)
        second = Channel(model, random.Random(42)).transmit_many("ACGT" * 20, 5)
        assert first == second

    def test_ladder_cache_shared_across_lengths(self):
        from repro.core.channel import _shared_model_cache

        channel = make_channel(ErrorModel.naive(0.01, 0.01, 0.01))
        channel.transmit("ACGT")
        channel.transmit("ACGTACGT")
        cache = _shared_model_cache(channel.model)
        assert {key[1] for key in cache if key[0] == "tables"} == {4, 8}

    def test_ladder_cache_shared_across_channels(self):
        from repro.core.channel import _shared_model_cache

        model = ErrorModel.naive(0.01, 0.01, 0.01)
        make_channel(model).transmit("ACGT")
        # A fresh Channel over the same model object sees the same cache
        # (the per_cluster_seeds workers' pattern: new Channel per chunk).
        assert ("tables", 4) in _shared_model_cache(model)
