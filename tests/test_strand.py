"""Unit tests for repro.core.strand (Cluster / StrandPool)."""

from __future__ import annotations

import random

import pytest

from repro.core.alphabet import AlphabetError
from repro.core.strand import Cluster, StrandPool, paired_pools


class TestCluster:
    def test_coverage_counts_copies(self, small_cluster):
        assert small_cluster.coverage == 4
        assert len(small_cluster) == 4

    def test_erasure_detection(self):
        assert Cluster("ACGT").is_erasure
        assert not Cluster("ACGT", ["ACGT"]).is_erasure

    def test_invalid_reference_rejected(self):
        with pytest.raises(AlphabetError):
            Cluster("ACXT")

    def test_trimmed_keeps_prefix(self, small_cluster):
        trimmed = small_cluster.trimmed(2)
        assert trimmed.copies == small_cluster.copies[:2]
        assert small_cluster.coverage == 4  # original untouched

    def test_trimmed_beyond_coverage_keeps_all(self, small_cluster):
        assert small_cluster.trimmed(10).coverage == 4

    def test_trimmed_negative_raises(self, small_cluster):
        with pytest.raises(ValueError):
            small_cluster.trimmed(-1)

    def test_shuffled_is_permutation(self, small_cluster, rng):
        shuffled = small_cluster.shuffled(rng)
        assert sorted(shuffled.copies) == sorted(small_cluster.copies)

    def test_add_copy_validates(self, small_cluster):
        with pytest.raises(AlphabetError):
            small_cluster.add_copy("AXGT")

    def test_iteration_yields_copies(self, small_cluster):
        assert list(small_cluster) == small_cluster.copies


class TestStrandPool:
    def test_from_references(self):
        pool = StrandPool.from_references(["ACGT", "TTTT"])
        assert pool.references == ["ACGT", "TTTT"]
        assert all(cluster.is_erasure for cluster in pool)

    def test_total_copies_and_mean(self, small_pool):
        assert small_pool.total_copies == 6
        assert small_pool.mean_coverage == pytest.approx(2.0)

    def test_mean_coverage_empty_pool(self):
        assert StrandPool().mean_coverage == 0.0

    def test_erasure_count(self, small_pool):
        assert small_pool.erasure_count == 1

    def test_coverage_histogram(self, small_pool):
        assert small_pool.coverage_histogram() == {4: 1, 2: 1, 0: 1}

    def test_coverages_in_order(self, small_pool):
        assert small_pool.coverages() == [4, 2, 0]

    def test_coverage_stats(self, small_pool):
        stats = small_pool.coverage_stats()
        assert stats["mean"] == pytest.approx(2.0)
        assert stats["min"] == 0.0
        assert stats["max"] == 4.0

    def test_coverage_stats_empty(self):
        assert StrandPool().coverage_stats()["mean"] == 0.0

    def test_with_min_coverage_filters(self, small_pool):
        filtered = small_pool.with_min_coverage(2)
        assert len(filtered) == 2
        assert all(cluster.coverage >= 2 for cluster in filtered)

    def test_trimmed_applies_to_all(self, small_pool):
        trimmed = small_pool.trimmed(1)
        assert trimmed.coverages() == [1, 1, 0]

    def test_shuffled_copies_preserves_membership(self, small_pool, rng):
        shuffled = small_pool.shuffled_copies(rng)
        for original, after in zip(small_pool, shuffled):
            assert sorted(original.copies) == sorted(after.copies)

    def test_all_copies_flattens_in_order(self, small_pool):
        reads = small_pool.all_copies()
        assert len(reads) == 6
        assert reads[:4] == small_pool[0].copies

    def test_subsampled_size(self, small_pool, rng):
        assert len(small_pool.subsampled(2, rng)) == 2

    def test_subsampled_too_many_raises(self, small_pool, rng):
        with pytest.raises(ValueError):
            small_pool.subsampled(5, rng)

    def test_getitem(self, small_pool, small_cluster):
        assert small_pool[0].reference == small_cluster.reference

    def test_fixed_coverage_protocol_prefix_property(self, rng):
        """The paper's protocol: coverage i+1 differs from coverage i only
        in the extra copy (Section 3.2)."""
        cluster = Cluster("ACGT", [f"{'ACGT'}" for _ in range(10)])
        pool = StrandPool([cluster]).shuffled_copies(random.Random(0))
        lower = pool.trimmed(5)[0].copies
        higher = pool.trimmed(6)[0].copies
        assert higher[:5] == lower


class TestPairedPools:
    def test_pairs_references_with_copies(self):
        pool = paired_pools(["ACGT"], [["ACGA", "ACGT"]])
        assert pool[0].coverage == 2

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            paired_pools(["ACGT", "TTTT"], [["ACGT"]])
