"""Tests for the Star-MSA reconstructor and the multi-stage channel."""

from __future__ import annotations

import random

import pytest

from repro.core.errors import ErrorModel
from repro.metrics.accuracy import evaluate_reconstruction
from repro.pipeline.decay import DecayParameters, StorageDecay
from repro.pipeline.pcr import PCRAmplifier, PCRParameters
from repro.pipeline.stages import (
    StagedChannel,
    default_sequencing_model,
    default_staged_channel,
    default_synthesis_model,
)
from repro.reconstruct.bma import BMALookahead
from repro.reconstruct.msa import StarMSAConsensus
from repro.reconstruct.majority import PositionalMajority
from repro.core.alphabet import random_strand


class TestStarMSA:
    def test_empty_cluster(self):
        assert StarMSAConsensus().reconstruct([], 10) == ""

    def test_single_copy_passthrough(self):
        assert StarMSAConsensus().reconstruct(["ACGTACGTAC"], 10) == "ACGTACGTAC"

    def test_clean_copies_exact(self):
        reference = "ACGTACGTACGTACGT"
        assert (
            StarMSAConsensus().reconstruct([reference] * 4, 16) == reference
        )

    def test_outvotes_substitution(self):
        reference = "ACGTACGTACGTACGT"
        copies = [reference, reference, "ACGTACCTACGTACGT"]
        assert StarMSAConsensus().reconstruct(copies, 16) == reference

    def test_outvotes_deletion(self):
        reference = "ACGTACGTACGTACGT"
        copies = [reference, reference, "ACGTCGTACGTACGT"]
        assert StarMSAConsensus().reconstruct(copies, 16) == reference

    def test_centre_choice_minimises_distance(self):
        consensus = StarMSAConsensus()
        copies = ["AAAA", "AAAT", "TTTT"]
        # "AAAA"/"AAAT" are near each other; "TTTT" is the outlier.
        assert consensus._choose_centre(copies) in ("AAAA", "AAAT")

    def test_invalid_candidates(self):
        with pytest.raises(ValueError):
            StarMSAConsensus(max_centre_candidates=0)

    def test_beats_unaligned_majority_on_noisy_cluster(self, uniform_pool):
        msa = evaluate_reconstruction(uniform_pool, StarMSAConsensus())
        majority = evaluate_reconstruction(uniform_pool, PositionalMajority())
        assert msa.per_strand > majority.per_strand


class TestStagedChannel:
    @pytest.fixture(scope="class")
    def references(self):
        rng = random.Random(8)
        return [random_strand(110, rng) for _ in range(30)]

    def test_all_stages_produce_pool(self, references):
        channel = default_staged_channel(seed=1, reads_per_strand=8)
        pool = channel.simulate(references)
        assert len(pool) == len(references)
        assert pool.total_copies > 0
        report = channel.last_report
        assert report is not None
        assert report.molecules_after_pcr > report.synthesized
        assert report.molecules_after_decay <= report.molecules_after_pcr

    def test_no_stages_is_clean_sampling(self, references):
        channel = StagedChannel(reads_per_strand=5, rng=random.Random(2))
        pool = channel.simulate(references)
        for cluster in pool:
            for copy in cluster.copies:
                assert copy == cluster.reference

    def test_sequencing_only(self, references):
        channel = StagedChannel(
            sequencing=ErrorModel.naive(0.01, 0.01, 0.01),
            reads_per_strand=5,
            rng=random.Random(3),
        )
        pool = channel.simulate(references)
        noisy = sum(
            1
            for cluster in pool
            for copy in cluster.copies
            if copy != cluster.reference
        )
        assert noisy > 0

    def test_pcr_bias_skews_coverage(self, references):
        channel = StagedChannel(
            pcr=PCRAmplifier(
                PCRParameters(substitution_rate=0.0), random.Random(4)
            ),
            pcr_cycles=10,
            reads_per_strand=10,
            rng=random.Random(4),
        )
        pool = channel.simulate(references)
        coverages = pool.coverages()
        # Branching amplification produces non-constant coverage.
        assert max(coverages) > min(coverages)

    def test_decay_reduces_molecules(self, references):
        channel = StagedChannel(
            decay=StorageDecay(
                DecayParameters(half_life_years=10.0), random.Random(5)
            ),
            storage_years=20.0,
            reads_per_strand=5,
            rng=random.Random(5),
        )
        channel.simulate(references)
        report = channel.last_report
        assert report.molecules_after_decay < report.synthesized

    def test_invalid_reads_per_strand(self):
        with pytest.raises(ValueError):
            StagedChannel(reads_per_strand=0)

    def test_default_models_have_expected_biases(self):
        synthesis = default_synthesis_model()
        sequencing = default_sequencing_model()
        assert synthesis.deletion_rate["A"] > synthesis.substitution_rate["A"]
        assert sequencing.substitution_rate["A"] > sequencing.deletion_rate["A"]

    def test_staged_output_is_reconstructable(self, references):
        channel = default_staged_channel(seed=6, reads_per_strand=8)
        pool = channel.simulate(references)
        populated = pool.with_min_coverage(3)
        if len(populated) >= 5:
            report = evaluate_reconstruction(populated, BMALookahead())
            assert report.per_character > 60.0


class TestGeneralizedModel:
    def test_generalized_model_builds(self, nanopore_pool):
        from repro.core.profile import ErrorProfile

        profile = ErrorProfile.from_pool(nanopore_pool, max_copies_per_cluster=3)
        model = profile.generalized_model()
        assert len(model.second_order_errors) > 10
        # Aggregate error preserved within tolerance.
        assert model.aggregate_error_rate() == pytest.approx(
            profile.statistics.aggregate_error_rate(), rel=0.25
        )

    def test_generalized_model_uses_full_histograms(self, nanopore_pool):
        from repro.core.profile import ErrorProfile
        from repro.core.spatial import HistogramSpatial

        profile = ErrorProfile.from_pool(nanopore_pool, max_copies_per_cluster=3)
        model = profile.generalized_model(top=5)
        histogram_spatials = [
            error.spatial
            for error in model.second_order_errors
            if isinstance(error.spatial, HistogramSpatial)
        ]
        assert histogram_spatials
        # Full histograms have many distinct values, unlike the
        # three-position fit whose interior is constant.
        raw = histogram_spatials[0].histogram
        assert len(set(raw)) > 4
