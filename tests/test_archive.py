"""Integration tests for the end-to-end DNA archive."""

from __future__ import annotations

import random

import pytest

from repro.core.errors import ErrorModel
from repro.data.nanopore import ground_truth_model
from repro.pipeline.decay import DecayParameters, StorageDecay
from repro.pipeline.encoding import RotationCodec
from repro.pipeline.storage import ArchiveError, DNAArchive
from repro.reconstruct.iterative import IterativeReconstruction


@pytest.fixture
def payload() -> bytes:
    return bytes(random.Random(11).randrange(256) for _ in range(500))


class TestWritePath:
    def test_write_produces_strands(self, payload):
        archive = DNAArchive(seed=0)
        stored = archive.write("doc", payload)
        assert stored.n_total_strands > stored.n_data_strands
        assert all(
            len(strand) == stored.layout.strand_length()
            for strand in stored.strands
        )

    def test_duplicate_key_rejected(self, payload):
        archive = DNAArchive(seed=0)
        archive.write("doc", payload)
        with pytest.raises(ValueError):
            archive.write("doc", payload)

    def test_empty_data_rejected(self):
        with pytest.raises(ValueError):
            DNAArchive(seed=0).write("doc", b"")

    def test_files_get_distinct_primers(self, payload):
        archive = DNAArchive(seed=0)
        first = archive.write("a", payload)
        second = archive.write("b", payload)
        assert first.layout.primer != second.layout.primer

    def test_invalid_rs_configuration(self):
        with pytest.raises(ValueError):
            DNAArchive(rs_group_data=250, rs_group_parity=10)


class TestReadPath:
    def test_noiseless_roundtrip(self, payload):
        archive = DNAArchive(seed=0)
        archive.write("doc", payload)
        report = archive.read("doc")
        assert report.data == payload
        assert report.n_erasures == 0

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError):
            DNAArchive(seed=0).read("missing")

    def test_roundtrip_through_mild_channel(self, payload):
        archive = DNAArchive(seed=0)
        archive.write("doc", payload)
        model = ErrorModel.naive(0.005, 0.005, 0.01)
        report = archive.read("doc", channel_model=model, coverage=6)
        assert report.data == payload

    def test_roundtrip_through_nanopore_channel(self, payload):
        archive = DNAArchive(seed=0, rs_group_data=24, rs_group_parity=16)
        archive.write("doc", payload)
        report = archive.read(
            "doc",
            channel_model=ground_truth_model(),
            coverage=10,
            reconstructor=IterativeReconstruction(),
        )
        assert report.data == payload
        assert report.n_reads > 0

    def test_roundtrip_with_storage_decay(self, payload):
        archive = DNAArchive(seed=0)
        archive.write("doc", payload)
        decay = StorageDecay(
            DecayParameters(half_life_years=1000.0), random.Random(1)
        )
        report = archive.read(
            "doc", decay=decay, storage_years=50.0, coverage=6
        )
        assert report.data == payload

    def test_rotation_codec_archive(self, payload):
        archive = DNAArchive(codec=RotationCodec(), seed=0)
        archive.write("doc", payload[:200])
        assert archive.read("doc").data == payload[:200]

    def test_unrecoverable_corruption_raises(self, payload):
        archive = DNAArchive(seed=0, rs_group_data=32, rs_group_parity=2)
        archive.write("doc", payload)
        # A harsh channel at coverage 1 destroys far more strands than two
        # parity strands per group can absorb.
        with pytest.raises(ArchiveError):
            archive.read(
                "doc",
                channel_model=ErrorModel.naive(0.05, 0.05, 0.05),
                coverage=1,
            )

    def test_all_strands_mixes_files(self, payload):
        archive = DNAArchive(seed=0)
        first = archive.write("a", payload[:100])
        second = archive.write("b", payload[100:200])
        assert len(archive.all_strands()) == (
            first.n_total_strands + second.n_total_strands
        )
