"""Unit tests for the XOR physical-redundancy scheme."""

from __future__ import annotations

import pytest

from repro.pipeline.xor_redundancy import (
    XorRecoveryError,
    decode_groups,
    encode_groups,
    encoded_length,
    xor_bytes,
)


class TestXorBytes:
    def test_xor_and_self_inverse(self):
        a, b = b"\x0f\xf0", b"\xff\x00"
        assert xor_bytes(xor_bytes(a, b), b) == a

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            xor_bytes(b"\x00", b"\x00\x01")


class TestEncode:
    def test_pair_produces_three_strands(self):
        encoded = encode_groups([b"\x01\x02", b"\x03\x04"])
        assert len(encoded) == 3
        assert encoded[2] == b"\x02\x06"

    def test_odd_trailing_payload_replicated(self):
        encoded = encode_groups([b"\x01", b"\x02", b"\x03"])
        assert len(encoded) == 5
        assert encoded[3] == encoded[4] == b"\x03"

    def test_empty_input(self):
        assert encode_groups([]) == []

    def test_unequal_lengths_raise(self):
        with pytest.raises(ValueError):
            encode_groups([b"\x01", b"\x02\x03"])

    @pytest.mark.parametrize("n, expected", [(0, 0), (1, 2), (2, 3), (3, 5), (4, 6)])
    def test_encoded_length(self, n, expected):
        assert encoded_length(n) == expected
        payloads = [bytes([i]) for i in range(n)]
        assert len(encode_groups(payloads)) == expected


class TestDecode:
    def test_full_group_decodes(self):
        payloads = [b"\x01", b"\x02", b"\x03", b"\x04"]
        encoded = encode_groups(payloads)
        assert decode_groups(encoded, 4) == payloads

    @pytest.mark.parametrize("missing", [0, 1, 2])
    def test_any_single_loss_per_group_recovers(self, missing):
        payloads = [b"\x0a", b"\x0b"]
        received: list[bytes | None] = list(encode_groups(payloads))
        received[missing] = None
        assert decode_groups(received, 2) == payloads

    def test_two_losses_in_group_fail(self):
        received: list[bytes | None] = list(encode_groups([b"\x0a", b"\x0b"]))
        received[0] = None
        received[2] = None
        with pytest.raises(XorRecoveryError):
            decode_groups(received, 2)

    def test_replicated_trailing_payload_survives_one_loss(self):
        payloads = [b"\x01", b"\x02", b"\x03"]
        received: list[bytes | None] = list(encode_groups(payloads))
        received[4] = None
        assert decode_groups(received, 3) == payloads

    def test_replicated_trailing_both_lost_fails(self):
        payloads = [b"\x01", b"\x02", b"\x03"]
        received: list[bytes | None] = list(encode_groups(payloads))
        received[3] = None
        received[4] = None
        with pytest.raises(XorRecoveryError):
            decode_groups(received, 3)
