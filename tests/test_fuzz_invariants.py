"""Property-based fuzzing of cross-cutting invariants.

These tests throw randomised inputs at whole subsystems and check the
invariants that every component implicitly relies on: channels emit valid
DNA, reconstructors never crash on degenerate clusters, profiles always
produce executable models, and the simulator is bit-reproducible.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.error_stats import ErrorStatistics
from repro.core.alphabet import is_valid_strand
from repro.core.channel import Channel
from repro.core.coverage import ConstantCoverage
from repro.core.errors import ErrorModel
from repro.core.profile import ErrorProfile, SimulatorStage
from repro.core.simulator import Simulator
from repro.core.strand import Cluster, StrandPool
from repro.reconstruct.bma import BMALookahead
from repro.reconstruct.divider_bma import DividerBMA
from repro.reconstruct.iterative import IterativeReconstruction
from repro.reconstruct.majority import PositionalMajority
from repro.reconstruct.msa import StarMSAConsensus
from repro.reconstruct.two_way import TwoWayIterative

dna = st.text(alphabet="ACGT", max_size=30)
rates = st.floats(0.0, 0.2)

RECONSTRUCTORS = [
    BMALookahead(),
    DividerBMA(),
    IterativeReconstruction(),
    TwoWayIterative(),
    PositionalMajority(),
    StarMSAConsensus(),
]


class TestChannelInvariants:
    @settings(max_examples=40, deadline=None)
    @given(reference=dna, p_ins=rates, p_del=rates, p_sub=rates,
           seed=st.integers(0, 10_000))
    def test_output_is_valid_dna(self, reference, p_ins, p_del, p_sub, seed):
        channel = Channel(
            ErrorModel.naive(p_ins, p_del, p_sub), random.Random(seed)
        )
        copy = channel.transmit(reference)
        assert is_valid_strand(copy)

    @settings(max_examples=40, deadline=None)
    @given(reference=dna, p_del=rates, seed=st.integers(0, 10_000))
    def test_length_bounds(self, reference, p_del, seed):
        # With no insertions the copy can never exceed the reference; with
        # no deletions it can never be shorter.
        deleting = Channel(
            ErrorModel.naive(0.0, p_del, 0.1), random.Random(seed)
        )
        assert len(deleting.transmit(reference)) <= len(reference)
        inserting = Channel(
            ErrorModel.naive(p_del, 0.0, 0.1), random.Random(seed)
        )
        assert len(inserting.transmit(reference)) >= len(reference)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_error_rate_measured_matches_model(self, seed):
        model = ErrorModel.naive(0.01, 0.02, 0.03)
        channel = Channel(model, random.Random(seed))
        statistics = ErrorStatistics()
        reference = "ACGT" * 30
        for _ in range(60):
            statistics.tally_pair(reference, channel.transmit(reference))
        assert statistics.aggregate_error_rate() == pytest.approx(
            model.aggregate_error_rate(), rel=0.5
        )


class TestReconstructorRobustness:
    @pytest.mark.parametrize(
        "reconstructor", RECONSTRUCTORS, ids=lambda r: r.name
    )
    @pytest.mark.parametrize(
        "copies",
        [
            [""],
            ["", ""],
            ["A"],
            ["A", "", "ACGT"],
            ["ACGT" * 30],
            ["AC", "ACGTACGTACGTACGTACGT"],
        ],
        ids=["empty", "two-empty", "single-base", "mixed", "long", "length-gap"],
    )
    def test_degenerate_clusters_never_crash(self, reconstructor, copies):
        estimate = reconstructor.reconstruct(copies, 10)
        assert is_valid_strand(estimate)

    @pytest.mark.parametrize(
        "reconstructor", RECONSTRUCTORS, ids=lambda r: r.name
    )
    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_random_clusters_produce_valid_dna(self, reconstructor, data):
        n_copies = data.draw(st.integers(1, 6))
        copies = [data.draw(dna) for _ in range(n_copies)]
        length = data.draw(st.integers(1, 35))
        estimate = reconstructor.reconstruct(copies, length)
        assert is_valid_strand(estimate)
        assert len(estimate) <= length + 1


class TestProfileToModelPipeline:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_any_profiled_pool_yields_executable_models(self, seed):
        rng = random.Random(seed)
        clusters = []
        for _ in range(5):
            reference = "".join(rng.choice("ACGT") for _ in range(40))
            copies = [
                "".join(
                    base for base in reference if rng.random() > 0.05
                )
                for _ in range(3)
            ]
            clusters.append(Cluster(reference, copies))
        profile = ErrorProfile.from_pool(StrandPool(clusters))
        for stage in SimulatorStage:
            model = profile.model_for_stage(stage)
            simulator = Simulator(model, ConstantCoverage(2), seed=seed)
            pool = simulator.simulate([clusters[0].reference])
            for copy in pool[0].copies:
                assert is_valid_strand(copy)


class TestSimulatorReproducibility:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_bitwise_reproducible(self, seed):
        model = ErrorModel.naive(0.03, 0.03, 0.03)
        references = ["ACGTACGTACGTACGTACGT"] * 4
        first = Simulator(model, ConstantCoverage(3), seed).simulate(references)
        second = Simulator(model, ConstantCoverage(3), seed).simulate(references)
        assert first.all_copies() == second.all_copies()
