"""Tests for fault injection, retry policies, the exception taxonomy,
and the archive's partial-recovery failure paths."""

from __future__ import annotations

import pytest

from repro.core.alphabet import validate_strand
from repro.core.channel import Channel
from repro.core.errors import ErrorModel
from repro.core.strand import Cluster, StrandPool
from repro.exceptions import (
    ChannelFaultError,
    ConfigError,
    DataFormatError,
    DecodeError,
    EncodeError,
    ReproError,
    RetrievalError,
)
from repro.pipeline.encoding import CodecError
from repro.pipeline.reed_solomon import ReedSolomonError
from repro.pipeline.storage import ArchiveError, DNAArchive
from repro.pipeline.synthesis import StrandParseError
from repro.robustness import (
    SEVERITY_LEVELS,
    FaultInjector,
    FaultSpec,
    RecoveryResult,
    RetryPolicy,
    ranges_from_flags,
    resolve_spec,
)

READS = ["ACGTACGTACGTACGT", "ACGTACGAACGTACGT", "ACGTACGTACGTACGA"]


class TestFaultSpec:
    def test_default_is_clean(self):
        assert FaultSpec().is_clean

    @pytest.mark.parametrize(
        "field",
        [
            "cluster_dropout",
            "read_truncation",
            "read_duplication",
            "chimera_rate",
            "contaminant_rate",
            "pool_corruption",
        ],
    )
    def test_rates_validated(self, field):
        with pytest.raises(ConfigError):
            FaultSpec(**{field: 1.5})
        with pytest.raises(ConfigError):
            FaultSpec(**{field: -0.1})

    def test_truncation_keep_min_validated(self):
        with pytest.raises(ConfigError):
            FaultSpec(truncation_keep_min=0.0)

    def test_scaled_caps_at_one(self):
        spec = FaultSpec(cluster_dropout=0.4).scaled(10)
        assert spec.cluster_dropout == 1.0

    def test_scaled_rejects_negative_factor(self):
        with pytest.raises(ConfigError):
            FaultSpec().scaled(-1)

    def test_severity_ladder_is_monotone(self):
        ladder = list(SEVERITY_LEVELS.values())
        for field in (
            "cluster_dropout",
            "read_truncation",
            "pool_corruption",
        ):
            rates = [getattr(spec, field) for spec in ladder]
            assert rates == sorted(rates)

    def test_resolve_spec_accepts_name_and_spec(self):
        assert resolve_spec("none").is_clean
        spec = FaultSpec(chimera_rate=0.5)
        assert resolve_spec(spec) is spec

    def test_resolve_spec_rejects_unknown_name(self):
        with pytest.raises(ConfigError, match="unknown fault severity"):
            resolve_spec("apocalyptic")


class TestFaultInjector:
    def test_clean_spec_is_identity(self):
        assert FaultInjector("none").inject_reads(READS) == READS

    def test_same_seed_replays_identical_faults(self):
        first = FaultInjector("severe", seed=7).inject_reads(READS * 20)
        second = FaultInjector("severe", seed=7).inject_reads(READS * 20)
        assert first == second

    def test_different_seeds_differ(self):
        first = FaultInjector("severe", seed=7).inject_reads(READS * 20)
        second = FaultInjector("severe", seed=8).inject_reads(READS * 20)
        assert first != second

    def test_reset_replays(self):
        injector = FaultInjector("severe", seed=3)
        first = injector.inject_reads(READS * 10)
        injector.reset()
        assert injector.inject_reads(READS * 10) == first
        assert injector.report.total_faults > 0

    def test_cluster_dropout(self):
        injector = FaultInjector(FaultSpec(cluster_dropout=1.0), seed=0)
        assert injector.inject_reads(READS) == []
        assert injector.report.clusters_dropped == 1

    def test_truncation_shortens_reads(self):
        injector = FaultInjector(
            FaultSpec(read_truncation=1.0, truncation_keep_min=0.5), seed=0
        )
        read = "ACGT" * 25
        out = injector.inject_reads([read] * 50)
        assert injector.report.reads_truncated > 0
        assert all(len(r) <= len(read) for r in out)
        assert all(len(r) >= int(len(read) * 0.5) for r in out)

    def test_duplication_adds_reads(self):
        injector = FaultInjector(FaultSpec(read_duplication=0.5), seed=0)
        out = injector.inject_reads(READS * 20)
        assert len(out) > len(READS) * 20
        assert injector.report.reads_duplicated == len(out) - len(READS) * 20

    def test_chimeras_splice_reads(self):
        injector = FaultInjector(FaultSpec(chimera_rate=1.0), seed=0)
        out = injector.inject_reads(READS)
        assert injector.report.chimeras_formed == len(READS)
        for read in out:
            validate_strand(read)

    def test_contaminants_are_valid_dna(self):
        injector = FaultInjector(FaultSpec(contaminant_rate=0.9), seed=1)
        out = injector.inject_reads(READS)
        assert injector.report.contaminants_added > 0
        assert len(out) == len(READS) + injector.report.contaminants_added
        for read in out:
            validate_strand(read)

    def test_corruption_flips_bases_in_place(self):
        injector = FaultInjector(FaultSpec(pool_corruption=0.5), seed=0)
        out = injector.inject_reads(READS)
        assert injector.report.bases_corrupted > 0
        assert [len(r) for r in out] == [len(r) for r in READS]
        assert out != READS

    def test_inject_pool_preserves_references(self):
        pool = StrandPool(
            [Cluster("ACGTACGT", ["ACGTACGT", "ACGTACGA"])] * 3
        )
        faulted = FaultInjector("severe", seed=0).inject_pool(pool)
        assert faulted.references == pool.references
        assert len(faulted) == len(pool)

    def test_wrap_composes_with_any_channel(self, rng):
        channel = Channel(ErrorModel.naive(0.01, 0.01, 0.01), rng)
        faulty = FaultInjector(
            FaultSpec(read_duplication=0.5), seed=0
        ).wrap(channel)
        reads = faulty.transmit_many("ACGT" * 20, 10)
        assert len(reads) > 10
        cluster = faulty.transmit_cluster("ACGT" * 20, 5)
        assert cluster.reference == "ACGT" * 20


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(coverage_growth=0.5)
        with pytest.raises(ConfigError):
            RetryPolicy(read_budget_per_attempt=0)
        with pytest.raises(ConfigError):
            RetryPolicy(fallback_after=-1)

    def test_coverage_escalates_geometrically(self):
        policy = RetryPolicy(max_attempts=3, coverage_growth=2.0)
        schedule = [
            policy.coverage_for_attempt(4, attempt, 100)
            for attempt in range(3)
        ]
        assert schedule == [4, 8, 16]

    def test_read_budget_clamps_coverage(self):
        policy = RetryPolicy(coverage_growth=4.0, read_budget_per_attempt=500)
        assert policy.coverage_for_attempt(8, 3, 100) == 5

    def test_fallback_reconstructor_schedule(self):
        primary = object()
        fallback = object()
        policy = RetryPolicy(
            fallback_reconstructor=fallback, fallback_after=1
        )
        assert policy.reconstructor_for_attempt(primary, 0) is primary
        assert policy.reconstructor_for_attempt(primary, 1) is fallback
        assert policy.reconstructor_for_attempt(primary, 2) is fallback


class TestRangesFromFlags:
    def test_all_recovered(self):
        assert ranges_from_flags([True, True]) == ()

    def test_all_missing(self):
        assert ranges_from_flags([False] * 3) == ((0, 3),)

    def test_interior_and_tail_runs(self):
        flags = [True, False, False, True, False]
        assert ranges_from_flags(flags) == ((1, 3), (4, 5))

    def test_empty(self):
        assert ranges_from_flags([]) == ()


class TestExceptionTaxonomy:
    def test_stage_tags(self):
        assert ConfigError("x").tagged() == "[config] x"
        assert DataFormatError("y").stage == "data"

    def test_every_stage_error_is_reproerror(self):
        for kind in (
            ConfigError,
            DataFormatError,
            EncodeError,
            ChannelFaultError,
            DecodeError,
            RetrievalError,
        ):
            assert issubclass(kind, ReproError)

    def test_back_compat_bases(self):
        # Pre-taxonomy code raised ValueError / RuntimeError; callers
        # catching those must keep working.
        assert issubclass(CodecError, ValueError)
        assert issubclass(ReedSolomonError, ValueError)
        assert issubclass(StrandParseError, ValueError)
        assert issubclass(EncodeError, ValueError)
        assert issubclass(ArchiveError, RuntimeError)

    def test_pipeline_errors_map_to_stages(self):
        assert issubclass(CodecError, DecodeError)
        assert issubclass(StrandParseError, DecodeError)
        assert issubclass(ArchiveError, RetrievalError)


def _archive(**kwargs) -> DNAArchive:
    defaults = dict(
        payload_bytes=8, rs_group_data=8, rs_group_parity=4, seed=0
    )
    defaults.update(kwargs)
    return DNAArchive(**defaults)


class TestResilientRetrieve:
    PAYLOAD = bytes(range(200)) + b"resilience" * 6

    def test_clean_channel_first_attempt(self):
        archive = _archive()
        archive.write("f", self.PAYLOAD)
        result = archive.retrieve("f", coverage=3)
        assert isinstance(result, RecoveryResult)
        assert result.complete
        assert result.data == self.PAYLOAD
        assert result.n_attempts == 1
        assert result.erasure_map == ()
        assert result.strand_failures == {}
        assert result.recovery_fraction == 1.0

    def test_retry_escalates_coverage(self):
        archive = _archive()
        archive.write("f", self.PAYLOAD)
        result = archive.retrieve(
            "f",
            channel_model=ErrorModel.naive(0.02, 0.02, 0.03),
            coverage=2,
            faults=FaultInjector("moderate", seed=4),
            retry=RetryPolicy(max_attempts=3, coverage_growth=2.0),
        )
        coverages = [report.coverage for report in result.attempts]
        assert coverages == sorted(coverages)
        assert result.n_reads > 0

    def test_unknown_key_raises_keyerror(self):
        with pytest.raises(KeyError):
            _archive().retrieve("missing")

    def test_invalid_coverage_rejected(self):
        archive = _archive()
        archive.write("f", b"x")
        with pytest.raises(ConfigError):
            archive.retrieve("f", coverage=0)


class TestPartialRecoveryShape:
    """ISSUE failure paths: the structured result, never a raw exception."""

    PAYLOAD = bytes((i * 7 + 3) % 256 for i in range(300))

    def _assert_partial_shape(self, result, payload):
        assert isinstance(result, RecoveryResult)
        assert not result.complete
        assert result.data_length == len(payload)
        assert len(result.data) == len(payload)
        assert 0 <= result.recovered_bytes <= len(payload)
        for start, end in result.erasure_map:
            assert 0 <= start < end <= len(payload)
        assert result.n_attempts >= 1
        assert all(not report.succeeded for report in result.attempts)

    def test_empty_pool_every_cluster_dropped(self):
        archive = _archive()
        archive.write("f", self.PAYLOAD)
        result = archive.retrieve(
            "f",
            faults=FaultInjector(FaultSpec(cluster_dropout=1.0), seed=0),
            retry=RetryPolicy(max_attempts=2),
        )
        self._assert_partial_shape(result, self.PAYLOAD)
        assert result.recovered_bytes == 0
        assert result.erasure_map == ((0, len(self.PAYLOAD)),)
        assert all(
            "dropped" in reason for reason in result.strand_failures.values()
        )

    def test_all_clusters_erased_by_decay(self):
        import random

        from repro.pipeline.decay import DecayParameters, StorageDecay

        archive = _archive()
        archive.write("f", self.PAYLOAD)
        decay = StorageDecay(
            DecayParameters(half_life_years=1e-6), rng=random.Random(0)
        )
        result = archive.retrieve(
            "f",
            decay=decay,
            storage_years=1000.0,
            retry=RetryPolicy(max_attempts=1),
        )
        self._assert_partial_shape(result, self.PAYLOAD)
        assert result.recovered_bytes == 0
        assert any(
            "decay" in reason for reason in result.strand_failures.values()
        )

    def test_crc_corrupt_strands_become_failures(self):
        archive = _archive()
        archive.write("f", self.PAYLOAD)
        result = archive.retrieve(
            "f",
            faults=FaultInjector(FaultSpec(pool_corruption=0.4), seed=1),
            retry=RetryPolicy(max_attempts=2),
        )
        self._assert_partial_shape(result, self.PAYLOAD)
        assert result.strand_failures
        assert any(
            "parse" in reason or "no read" in reason
            for reason in result.strand_failures.values()
        )

    def test_rs_overwhelmed_still_structured(self):
        archive = _archive(rs_group_parity=2)
        archive.write("f", self.PAYLOAD)
        result = archive.retrieve(
            "f",
            faults=FaultInjector("extreme", seed=2),
            retry=RetryPolicy(max_attempts=2),
        )
        self._assert_partial_shape(result, self.PAYLOAD)
        assert "PARTIAL" in result.summary()

    def test_partial_bytes_that_are_recovered_are_correct(self):
        archive = _archive()
        archive.write("f", self.PAYLOAD)
        result = archive.retrieve(
            "f",
            faults=FaultInjector(
                FaultSpec(cluster_dropout=0.6), seed=5
            ),
            retry=RetryPolicy(max_attempts=1),
        )
        if result.complete:
            pytest.skip("seed recovered everything; shape not exercised")
        recovered = set(range(len(self.PAYLOAD)))
        for start, end in result.erasure_map:
            recovered -= set(range(start, end))
        assert len(recovered) == result.recovered_bytes
        for position in recovered:
            assert result.data[position] == self.PAYLOAD[position]

    def test_no_exception_escapes_at_any_severity(self):
        for severity in SEVERITY_LEVELS:
            archive = _archive(rs_group_parity=2)
            archive.write("f", self.PAYLOAD[:100])
            result = archive.retrieve(
                "f",
                channel_model=ErrorModel.naive(0.01, 0.01, 0.02),
                coverage=2,
                faults=FaultInjector(severity, seed=0),
                retry=RetryPolicy(max_attempts=2),
            )
            assert isinstance(result, RecoveryResult)

    def test_strict_read_still_raises(self):
        archive = _archive()
        archive.write("f", self.PAYLOAD)
        with pytest.raises(ArchiveError):
            archive.read(
                "f",
                faults=FaultInjector(FaultSpec(cluster_dropout=1.0), seed=0),
            )


class TestRetryDeadline:
    """satellite: a wall-clock budget stops retry escalation between
    attempts and still returns the best partial RecoveryResult."""

    PAYLOAD = bytes((i * 13 + 1) % 256 for i in range(200))

    def test_deadline_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(deadline_s=0.0)
        with pytest.raises(ConfigError):
            RetryPolicy(deadline_s=-1.0)
        RetryPolicy(deadline_s=5.0)  # positive is fine

    def test_over_deadline(self):
        policy = RetryPolicy(deadline_s=1.0)
        assert not policy.over_deadline(0.5)
        assert policy.over_deadline(1.0)
        assert policy.over_deadline(2.0)
        assert not RetryPolicy().over_deadline(1e9)  # no budget -> never

    def test_exhausted_deadline_stops_after_first_attempt(self):
        archive = _archive()
        archive.write("f", self.PAYLOAD)
        result = archive.retrieve(
            "f",
            faults=FaultInjector(FaultSpec(cluster_dropout=1.0), seed=0),
            retry=RetryPolicy(max_attempts=5, deadline_s=1e-9),
        )
        assert isinstance(result, RecoveryResult)
        assert not result.complete
        assert result.n_attempts == 1  # budget burned; no escalation
        assert result.data_length == len(self.PAYLOAD)

    def test_generous_deadline_does_not_interfere(self):
        archive = _archive()
        archive.write("f", self.PAYLOAD)
        result = archive.retrieve(
            "f", coverage=3, retry=RetryPolicy(max_attempts=3, deadline_s=3600)
        )
        assert result.complete
        assert result.data == self.PAYLOAD

    def test_without_deadline_all_attempts_used(self):
        archive = _archive()
        archive.write("f", self.PAYLOAD)
        result = archive.retrieve(
            "f",
            faults=FaultInjector(FaultSpec(cluster_dropout=1.0), seed=0),
            retry=RetryPolicy(max_attempts=3),
        )
        assert result.n_attempts == 3
