"""Tests for span tracing, the metrics registry, structured logging,
cross-process aggregation, and the observability CLI surface."""

from __future__ import annotations

import io
import json
import math
import pickle
import random
from pathlib import Path

import pytest

from repro import observability
from repro.cli import main
from repro.core.coverage import ConstantCoverage
from repro.core.errors import ErrorModel
from repro.core.simulator import Simulator
from repro.data.io import write_pool
from repro.experiments import cache as context_cache
from repro.observability.bench import (
    BENCH_SCHEMA_VERSION,
    assert_stamped,
    stamp_record,
)
from repro.observability.logs import configure_logging, get_logger
from repro.observability.metrics import Histogram, MetricsRegistry
from repro.parallel import parallel_map
from repro.reconstruct.iterative import IterativeReconstruction

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def _clean_observability():
    """Every test starts and ends with collectors off and default logging."""
    observability.disable()
    observability.reset_logging()
    yield
    observability.disable()
    observability.reset_logging()


# ------------------------------------------------------------------ #
# Spans
# ------------------------------------------------------------------ #


def test_span_noop_when_disabled():
    with observability.span("anything", x=1) as live:
        assert live is None
    assert observability.tracer() is None


def test_span_nesting_and_attributes():
    observability.enable(tracing=True, metrics=False)
    with observability.span("outer", a=1):
        with observability.span("inner", b=2) as inner:
            inner.set(c=3)
    records = observability.tracer().records
    assert [record["name"] for record in records] == ["inner", "outer"]
    inner_record, outer_record = records
    assert inner_record["parent_id"] == outer_record["span_id"]
    assert outer_record["parent_id"] is None
    assert inner_record["attrs"] == {"b": 2, "c": 3}
    assert outer_record["attrs"] == {"a": 1}
    assert all(record["outcome"] == "ok" for record in records)
    assert all(record["duration_s"] >= 0 for record in records)


def test_span_records_error_outcome():
    observability.enable(tracing=True, metrics=False)
    with pytest.raises(ValueError):
        with observability.span("failing"):
            raise ValueError("boom")
    (record,) = observability.tracer().records
    assert record["outcome"] == "error"
    assert record["error"] == "ValueError"


def test_span_observes_latency_histogram():
    observability.enable(tracing=True, metrics=True)
    with observability.span("timed"):
        pass
    exported = observability.registry().to_json()
    (histogram,) = [
        h for h in exported["histograms"] if h["name"] == "span.seconds"
    ]
    assert histogram["labels"] == {"span": "timed"}
    assert histogram["count"] == 1


def test_flame_summary_groups_by_path():
    observability.enable(tracing=True, metrics=False)
    for _ in range(3):
        with observability.span("root"):
            with observability.span("leaf"):
                pass
    rows = observability.tracer().flame_summary()
    by_path = {row["path"]: row for row in rows}
    assert by_path["root"]["count"] == 3
    assert by_path["root/leaf"]["count"] == 3
    text = observability.tracer().flame_text()
    assert "root/leaf" in text


# ------------------------------------------------------------------ #
# Metrics
# ------------------------------------------------------------------ #


def test_counter_gauge_and_labels():
    registry = MetricsRegistry()
    registry.counter("hits", kind="a").inc()
    registry.counter("hits", kind="a").inc(2)
    registry.counter("hits", kind="b").inc()
    registry.gauge("depth").set(4.5)
    exported = registry.to_json()
    counters = {
        (c["name"], tuple(sorted(c["labels"].items()))): c["value"]
        for c in exported["counters"]
    }
    assert counters[("hits", (("kind", "a"),))] == 3
    assert counters[("hits", (("kind", "b"),))] == 1
    assert exported["gauges"][0]["value"] == 4.5


def test_histogram_bucket_edges():
    histogram = Histogram("h", (), buckets=(1.0, 2.0, 5.0))
    # Boundary values land in the bucket they name (Prometheus le
    # semantics); values above every bound land in +Inf.
    histogram.observe(0.5)
    histogram.observe(1.0)
    histogram.observe(1.0000001)
    histogram.observe(5.0)
    histogram.observe(7.0)
    assert histogram.bucket_counts == [2, 1, 1, 1]
    assert histogram.count == 5
    assert histogram.sum == pytest.approx(14.5000001)


def test_histogram_single_bucket_and_empty_bounds():
    histogram = Histogram("h", (), buckets=(0.1,))
    histogram.observe(0.1)
    histogram.observe(0.2)
    assert histogram.bucket_counts == [1, 1]
    with pytest.raises(ValueError):
        Histogram("h", (), buckets=())


def test_histogram_quantile_uniform_distribution():
    # 100 observations spread uniformly over (0, 10] in buckets of 1:
    # linear interpolation recovers the exact quantiles.
    histogram = Histogram("h", (), buckets=tuple(float(b) for b in range(1, 11)))
    for i in range(100):
        histogram.observe(i / 10.0 + 0.05)
    assert histogram.quantile(0.5) == pytest.approx(5.0, abs=0.1)
    assert histogram.quantile(0.95) == pytest.approx(9.5, abs=0.1)
    assert histogram.quantile(0.99) == pytest.approx(9.9, abs=0.1)


def test_histogram_quantile_skewed_distribution():
    histogram = Histogram("h", (), buckets=(1.0, 10.0, 100.0))
    for _ in range(90):
        histogram.observe(0.5)  # 90% fast
    for _ in range(10):
        histogram.observe(50.0)  # 10% slow tail
    # p50 interpolates inside the first bucket (assumed uniform over
    # [0, 1]): 50/90 of the way through.
    assert histogram.quantile(0.5) == pytest.approx(50 / 90, rel=1e-6)
    # p95 lands in the tail bucket (10, 100].
    assert 10.0 < histogram.quantile(0.95) <= 100.0


def test_histogram_quantile_edge_cases():
    from repro.observability.metrics import histogram_quantile

    # Empty histogram: no data, NaN.
    assert math.isnan(histogram_quantile((1.0, 2.0), (0, 0, 0), 0.5))
    # q clamped to [0, 1].
    histogram = Histogram("h", (), buckets=(1.0, 2.0))
    histogram.observe(0.5)
    histogram.observe(1.5)
    assert histogram.quantile(-1.0) == histogram.quantile(0.0)
    assert histogram.quantile(2.0) == histogram.quantile(1.0)
    # All mass in the +Inf bucket clamps to the highest finite bound.
    overflow = Histogram("h", (), buckets=(1.0, 2.0))
    overflow.observe(100.0)
    assert overflow.quantile(0.5) == 2.0
    assert overflow.quantile(0.99) == 2.0


def test_prometheus_export_cumulative_buckets():
    registry = MetricsRegistry()
    registry.counter("cache.hit").inc(2)
    registry.gauge("pool.size", stage="x").set(3)
    h = registry.histogram("lat", buckets=(1.0, 2.0), op="r")
    h.observe(0.5)
    h.observe(1.5)
    h.observe(9.0)
    text = registry.to_prometheus_text()
    assert "# TYPE cache_hit counter" in text
    assert "cache_hit 2" in text
    assert 'pool_size{stage="x"} 3' in text
    assert 'lat_bucket{op="r",le="1"} 1' in text
    assert 'lat_bucket{op="r",le="2"} 2' in text
    assert 'lat_bucket{op="r",le="+Inf"} 3' in text
    assert 'lat_count{op="r"} 3' in text


def test_json_export_round_trips():
    registry = MetricsRegistry()
    registry.counter("c", backend="auto").inc()
    parsed = json.loads(registry.to_json_text())
    assert parsed["schema_version"] == 1
    assert parsed["counters"] == [
        {"name": "c", "labels": {"backend": "auto"}, "value": 1}
    ]


def test_merge_adds_counters_and_histograms_max_gauges():
    parent = MetricsRegistry()
    parent.counter("n").inc(1)
    parent.gauge("g").set(5)
    parent.histogram("h", buckets=(1.0,)).observe(0.5)
    worker = MetricsRegistry()
    worker.counter("n").inc(2)
    worker.counter("only_worker").inc()
    worker.gauge("g").set(3)
    worker.histogram("h", buckets=(1.0,)).observe(2.0)
    parent.merge(worker.snapshot())
    assert parent.counter("n").value == 3
    assert parent.counter("only_worker").value == 1
    assert parent.gauge("g").value == 5
    merged = parent.histogram("h", buckets=(1.0,))
    assert merged.bucket_counts == [1, 1]
    assert merged.count == 2


def test_merge_rejects_mismatched_histogram_bounds():
    parent = MetricsRegistry()
    parent.histogram("h", buckets=(1.0,)).observe(0.5)
    worker = MetricsRegistry()
    worker.histogram("h", buckets=(2.0,)).observe(0.5)
    with pytest.raises(ValueError):
        parent.merge(worker.snapshot())


# ------------------------------------------------------------------ #
# Structured logging
# ------------------------------------------------------------------ #


def test_logger_key_value_format_and_level_threshold():
    stream = io.StringIO()
    configure_logging(level="info", json_mode=False, stream=stream)
    logger = get_logger("repro.test")
    logger.debug("dropped")
    logger.info("kept", key="a b", n=3)
    output = stream.getvalue()
    assert "dropped" not in output
    assert 'event=kept key="a b" n=3' in output
    assert "logger=repro.test" in output


def test_logger_json_mode():
    stream = io.StringIO()
    configure_logging(level="debug", json_mode=True, stream=stream)
    get_logger("repro.test").warning("cache.miss", key="k1", path=Path("/x"))
    record = json.loads(stream.getvalue())
    assert record["level"] == "warning"
    assert record["event"] == "cache.miss"
    assert record["key"] == "k1"
    assert record["path"] == "/x"  # non-JSON types stringified


def test_configure_logging_rejects_unknown_level():
    with pytest.raises(ValueError):
        configure_logging(level="loud")


def test_malformed_workers_env_warns_once(monkeypatch):
    from repro import parallel

    stream = io.StringIO()
    configure_logging(level="warning", stream=stream)
    monkeypatch.setenv("REPRO_WORKERS", "banana")
    monkeypatch.setattr(parallel, "_warned_worker_values", set())
    assert parallel.default_workers() == 1
    assert parallel.default_workers() == 1
    output = stream.getvalue()
    assert output.count("event=invalid_workers_env") == 1
    assert "value=banana" in output
    assert "fallback=1" in output


# ------------------------------------------------------------------ #
# Cross-process aggregation
# ------------------------------------------------------------------ #


def _observed_task(item: int) -> int:
    """Module-level pool task: emits one span, one counter, and one
    backend-labelled kernel call per item."""
    from repro.align.edit_distance import edit_distance

    with observability.span("task", item=item):
        observability.counter("task.items").inc()
        edit_distance("ACGTACGT", "ACGAACGT")  # -> kernel.calls{backend=...}
    return item * 2


def test_parallel_map_merges_worker_metrics_and_spans(monkeypatch):
    monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")
    observability.enable(tracing=True, metrics=True)
    items = list(range(6))
    with observability.span("parent"):
        results = parallel_map(_observed_task, items, workers=2)
    assert results == [item * 2 for item in items]
    assert observability.registry().counter("task.items").value == len(items)
    kernel_calls = [
        c
        for c in observability.registry().to_json()["counters"]
        if c["name"] == "kernel.calls"
    ]
    assert sum(c["value"] for c in kernel_calls) == len(items)
    assert all(c["labels"]["kernel"] == "edit" for c in kernel_calls)
    records = observability.tracer().records
    worker_records = [r for r in records if r.get("worker")]
    assert len(worker_records) == len(items)
    parent_record = next(r for r in records if r["name"] == "parent")
    assert {r["parent_id"] for r in worker_records} == {
        parent_record["span_id"]
    }
    assert len({r["span_id"] for r in records}) == len(records)
    assert sorted(r["attrs"]["item"] for r in worker_records) == items


def test_serial_and_parallel_counters_match(monkeypatch):
    observability.enable(tracing=False, metrics=True)
    items = list(range(5))
    serial_results = parallel_map(_observed_task, items, workers=1)
    serial_count = observability.registry().counter("task.items").value

    monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")
    observability.enable(tracing=False, metrics=True)  # fresh registry
    parallel_results = parallel_map(_observed_task, items, workers=2)
    parallel_count = observability.registry().counter("task.items").value

    assert parallel_results == serial_results
    assert parallel_count == serial_count == len(items)


def test_profile_fit_observability_matches_serial(monkeypatch, uniform_pool):
    """The merged kernel/stage counters of a --workers 2 profile fit equal
    the serial run's, and the fitted statistics are bit-identical."""
    from repro.core.profile import ErrorProfile

    observability.enable(tracing=False, metrics=True)
    serial = ErrorProfile.from_pool(uniform_pool, 4, None, 1)
    serial_counters = {
        (c["name"], tuple(sorted(c["labels"].items()))): c["value"]
        for c in observability.registry().to_json()["counters"]
    }

    monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")
    observability.enable(tracing=False, metrics=True)
    parallel = ErrorProfile.from_pool(uniform_pool, 4, None, 2)
    parallel_counters = {
        (c["name"], tuple(sorted(c["labels"].items()))): c["value"]
        for c in observability.registry().to_json()["counters"]
    }

    assert parallel.statistics == serial.statistics
    assert parallel_counters == serial_counters
    assert serial_counters[("profile.clusters", ())] == len(uniform_pool)


def test_pipeline_output_identical_with_tracing_on():
    simulator_off = Simulator(
        ErrorModel.uniform(0.04), ConstantCoverage(4), seed=5
    )
    pool_off = simulator_off.simulate_random(10, 60)
    estimates_off = IterativeReconstruction().reconstruct_pool(pool_off, 60)

    observability.enable(tracing=True, metrics=True)
    simulator_on = Simulator(
        ErrorModel.uniform(0.04), ConstantCoverage(4), seed=5
    )
    pool_on = simulator_on.simulate_random(10, 60)
    estimates_on = IterativeReconstruction().reconstruct_pool(pool_on, 60)

    assert pool_on.references == pool_off.references
    assert [c.copies for c in pool_on] == [c.copies for c in pool_off]
    assert estimates_on == estimates_off
    assert observability.tracer().records  # and it actually traced


# ------------------------------------------------------------------ #
# Cache lifecycle events
# ------------------------------------------------------------------ #


def test_cache_lifecycle_counters_and_logs(monkeypatch, tmp_path, small_pool):
    from repro.core.profile import ErrorProfile

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    stream = io.StringIO()
    configure_logging(level="debug", stream=stream)
    observability.enable(tracing=False, metrics=True)
    statistics = ErrorProfile.from_pool(small_pool).statistics
    key_args = (len(small_pool), 123, None)

    assert context_cache.load_context_artifacts(*key_args) is None  # miss
    assert context_cache.store_context_artifacts(
        *key_args, small_pool, statistics
    )
    cached = context_cache.load_context_artifacts(*key_args)  # hit
    assert cached is not None

    path = context_cache.context_cache_path(*key_args)
    path.write_bytes(b"not a pickle")
    assert context_cache.load_context_artifacts(*key_args) is None
    assert not path.exists()  # unreadable entries are discarded

    path.write_bytes(
        pickle.dumps({"pool": small_pool, "statistics": "wrong type"})
    )
    assert context_cache.load_context_artifacts(*key_args) is None  # stale
    assert not path.exists()

    counters = {
        c["name"]: c["value"]
        for c in observability.registry().to_json()["counters"]
    }
    assert counters["cache.miss"] == 1
    assert counters["cache.store"] == 1
    assert counters["cache.hit"] == 1
    assert counters["cache.unreadable_discard"] == 1
    assert counters["cache.stale_discard"] == 1

    output = stream.getvalue()
    key = context_cache.context_cache_key(*key_args)
    for event in ("cache.miss", "cache.hit", "cache.unreadable_discard"):
        assert f"event={event}" in output
    assert f"key={key}" in output


# ------------------------------------------------------------------ #
# Retry / fault event stream
# ------------------------------------------------------------------ #


def test_chaos_produces_auditable_event_stream():
    from repro.experiments import chaos

    observability.enable(tracing=True, metrics=True)
    result = chaos.run(
        n_clusters=8, verbose=False, severities=("mild",), n_trials=1
    )
    assert result["unhandled_errors"] == 0

    names = {record["name"] for record in observability.tracer().records}
    assert {"chaos.severity", "retrieve", "retrieve.attempt"} <= names
    attempt_records = [
        r
        for r in observability.tracer().records
        if r["name"] == "retrieve.attempt"
    ]
    assert all(
        {"attempt", "coverage", "reconstructor", "outcome"}
        <= set(r["attrs"])
        for r in attempt_records
    )

    exported = observability.registry().to_json()
    counter_names = {c["name"] for c in exported["counters"]}
    assert "chaos.trials" in counter_names
    assert "retry.attempts" in counter_names
    fault_counters = [
        c for c in exported["counters"] if c["name"] == "faults.injected"
    ]
    assert fault_counters  # mild severity injects faults
    assert all(
        c["labels"]["severity"] == "mild" for c in fault_counters
    )
    assert sum(c["value"] for c in fault_counters) == result["fault_counts"][
        "mild"
    ]


# ------------------------------------------------------------------ #
# CLI flags
# ------------------------------------------------------------------ #


def test_cli_trace_and_metrics_export(tmp_path, small_pool, capsys):
    dataset = tmp_path / "pool.evyat"
    write_pool(small_pool, dataset)
    trace_file = tmp_path / "trace.jsonl"
    metrics_file = tmp_path / "metrics.json"
    exit_code = main(
        [
            "--trace",
            str(trace_file),
            "--metrics-out",
            str(metrics_file),
            "evaluate",
            str(dataset),
            "--algorithms",
            "majority",
        ]
    )
    assert exit_code == 0
    capsys.readouterr()
    records = [
        json.loads(line) for line in trace_file.read_text().splitlines()
    ]
    assert any(record["name"] == "reconstruct" for record in records)
    metrics = json.loads(metrics_file.read_text())
    assert any(
        c["name"] == "reconstruct.clusters" for c in metrics["counters"]
    )
    # The CLI tears the collectors back down after exporting.
    assert not observability.collection_enabled()


def test_cli_metrics_prom_extension(tmp_path, small_pool, capsys):
    dataset = tmp_path / "pool.evyat"
    write_pool(small_pool, dataset)
    metrics_file = tmp_path / "metrics.prom"
    exit_code = main(
        [
            "--metrics-out",
            str(metrics_file),
            "evaluate",
            str(dataset),
            "--algorithms",
            "majority",
        ]
    )
    assert exit_code == 0
    capsys.readouterr()
    text = metrics_file.read_text()
    assert "# TYPE reconstruct_clusters counter" in text


def test_cli_log_level_flag(tmp_path, small_pool, capsys):
    from repro.observability import logs

    dataset = tmp_path / "pool.evyat"
    write_pool(small_pool, dataset)
    exit_code = main(
        ["--log-level", "debug", "evaluate", str(dataset), "--algorithms", "majority"]
    )
    assert exit_code == 0
    capsys.readouterr()
    assert logs.log_level() == logs.LEVELS["debug"]


# ------------------------------------------------------------------ #
# Bench record provenance
# ------------------------------------------------------------------ #


def test_stamp_record_and_assert_stamped():
    record = stamp_record({"payload": 1})
    assert record["payload"] == 1
    assert record["schema_version"] == BENCH_SCHEMA_VERSION
    assert_stamped(record)
    with pytest.raises(AssertionError):
        assert_stamped({"payload": 1})
    with pytest.raises(AssertionError):
        assert_stamped({**record, "schema_version": BENCH_SCHEMA_VERSION + 1})


@pytest.mark.parametrize(
    "bench_name", ["BENCH_throughput.json", "BENCH_kernels.json"]
)
def test_committed_bench_records_are_stamped(bench_name):
    record = json.loads((REPO_ROOT / bench_name).read_text())
    assert_stamped(record)
