"""Unit tests for the DNASimulator and naive-simulator baselines."""

from __future__ import annotations

import pytest

from repro.analysis.error_stats import ErrorStatistics
from repro.baselines.dnasimulator import DNASimulatorBaseline
from repro.baselines.naive import NaiveSimulator
from repro.core.alphabet import BASES


def flat_dictionary(substitution=0.0, insertion=0.0, deletion=0.0,
                    long_deletion=0.0):
    return {
        base: {
            "substitution": substitution,
            "insertion": insertion,
            "deletion": deletion,
            "long_deletion": long_deletion,
        }
        for base in BASES
    }


class TestDNASimulatorValidation:
    def test_missing_base_rejected(self):
        dictionary = flat_dictionary()
        del dictionary["T"]
        with pytest.raises(ValueError, match="missing base"):
            DNASimulatorBaseline(dictionary)

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            DNASimulatorBaseline(flat_dictionary(substitution=1.5))

    def test_rates_summing_above_one_rejected(self):
        with pytest.raises(ValueError, match="sum"):
            DNASimulatorBaseline(
                flat_dictionary(substitution=0.5, insertion=0.6)
            )

    def test_negative_coverage_rejected(self):
        with pytest.raises(ValueError):
            DNASimulatorBaseline(flat_dictionary(), coverage=-1)


class TestDNASimulatorBehaviour:
    def test_zero_rates_identity(self):
        baseline = DNASimulatorBaseline(flat_dictionary(), coverage=3, seed=0)
        pool = baseline.generate(["ACGTACGT"])
        assert pool[0].copies == ["ACGTACGT"] * 3

    def test_deletion_only_shortens(self):
        baseline = DNASimulatorBaseline(
            flat_dictionary(deletion=0.3), coverage=10, seed=0
        )
        pool = baseline.generate(["ACGT" * 20])
        assert all(len(copy) <= 80 for copy in pool[0].copies)
        assert any(len(copy) < 80 for copy in pool[0].copies)

    def test_substitution_preserves_length(self):
        baseline = DNASimulatorBaseline(
            flat_dictionary(substitution=0.3), coverage=10, seed=0
        )
        pool = baseline.generate(["ACGT" * 20])
        assert all(len(copy) == 80 for copy in pool[0].copies)

    def test_long_deletion_removes_at_least_two(self):
        baseline = DNASimulatorBaseline(
            flat_dictionary(long_deletion=0.05), coverage=30, seed=0
        )
        pool = baseline.generate(["ACGT" * 20])
        shortened = [copy for copy in pool[0].copies if len(copy) < 80]
        assert shortened
        assert all(len(copy) <= 78 for copy in shortened)

    def test_generate_with_coverages(self):
        baseline = DNASimulatorBaseline(flat_dictionary(), seed=0)
        pool = baseline.generate_with_coverages(["ACGT", "TGCA"], [1, 4])
        assert pool.coverages() == [1, 4]

    def test_generate_with_coverages_length_mismatch(self):
        baseline = DNASimulatorBaseline(flat_dictionary(), seed=0)
        with pytest.raises(ValueError):
            baseline.generate_with_coverages(["ACGT"], [1, 2])

    def test_invalid_reference_rejected(self):
        baseline = DNASimulatorBaseline(flat_dictionary(), coverage=1, seed=0)
        with pytest.raises(Exception):
            baseline.generate(["ACXT"])


class TestDNASimulatorFactories:
    def test_from_technologies(self):
        baseline = DNASimulatorBaseline.from_technologies(
            "twist", "nanopore", coverage=2, seed=0
        )
        pool = baseline.generate(["ACGT" * 25])
        assert pool[0].coverage == 2

    def test_from_technologies_unknown_raises(self):
        with pytest.raises(KeyError):
            DNASimulatorBaseline.from_technologies("acme", "nanopore")

    def test_from_error_statistics(self):
        statistics = ErrorStatistics()
        statistics.tally_pair("ACGTACGTAC", "ACGTACGTAC")
        statistics.tally_pair("ACGTACGTAC", "ACGAACGTAC")
        baseline = DNASimulatorBaseline.from_error_statistics(
            statistics, coverage=3, seed=0
        )
        # Substitution rate compensated by 4/3 for silent substitutions.
        assert baseline.dictionary["A"]["substitution"] == pytest.approx(
            (1 / 20) * 4 / 3
        )

    def test_as_error_model_equivalent_rates(self):
        baseline = DNASimulatorBaseline(
            flat_dictionary(substitution=0.04, insertion=0.01, deletion=0.02),
            seed=0,
        )
        model = baseline.as_error_model()
        assert model.substitution_rate["A"] == pytest.approx(0.03)
        assert model.insertion_rate["A"] == pytest.approx(0.01)


class TestNaiveSimulator:
    def test_generate_shapes(self):
        simulator = NaiveSimulator(0.01, 0.01, 0.01, coverage=4, seed=0)
        pool = simulator.generate(["ACGT" * 10] * 3)
        assert len(pool) == 3
        assert pool.coverages() == [4, 4, 4]

    def test_zero_rates_identity(self):
        simulator = NaiveSimulator(0.0, 0.0, 0.0, coverage=2, seed=0)
        pool = simulator.generate(["ACGTACGT"])
        assert pool[0].copies == ["ACGTACGT"] * 2

    def test_custom_coverages(self):
        simulator = NaiveSimulator(0.0, 0.0, 0.0, seed=0)
        pool = simulator.generate_with_coverages(["ACGT", "TGCA"], [2, 5])
        assert pool.coverages() == [2, 5]

    def test_model_property_exposes_rates(self):
        simulator = NaiveSimulator(0.01, 0.02, 0.03, seed=0)
        assert simulator.model.deletion_rate["G"] == pytest.approx(0.02)
