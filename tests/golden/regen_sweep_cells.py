"""Regenerate tests/golden/sweep_cells.json from sweep_small.toml.

Run after an *intentional* physics change::

    PYTHONPATH=src python tests/golden/regen_sweep_cells.py

The golden pins, per cell (keyed by zero-padded cell index), the
scenario coordinates and the merged result with the partition metadata
(``n_shards``/``workers``) stripped — those describe how a run was
executed, not what it computed, and the golden tests assert the
*computed* numbers are identical across execution strategies.
"""

from __future__ import annotations

import json
import pathlib
import sys
import tempfile

GOLDEN_DIR = pathlib.Path(__file__).parent

#: Result keys that describe the execution layout, not the measurement.
PARTITION_KEYS = ("n_shards", "workers")


def normalised_cells(sweep_dir) -> dict:
    """The golden payload for a finished sweep directory."""
    from repro.scenarios import SweepStore

    cells = {}
    for record in SweepStore(sweep_dir).cell_records():
        result = dict(record["result"])
        for key in PARTITION_KEYS:
            result.pop(key, None)
        cells[f"{record['cell_index']:03d}"] = {
            "scenario": record["scenario"],
            "complete": record["complete"],
            "result": result,
        }
    return cells


def main() -> int:
    from repro.scenarios import load_sweep_spec, run_sweep

    spec = load_sweep_spec(GOLDEN_DIR / "sweep_small.toml")
    with tempfile.TemporaryDirectory() as tmp:
        outcome = run_sweep(spec, pathlib.Path(tmp) / "sweep")
        if outcome.exit_code != 0:
            print(f"sweep did not fully succeed (exit {outcome.exit_code})")
            return 1
        payload = normalised_cells(outcome.sweep_dir)
    out = GOLDEN_DIR / "sweep_cells.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out} ({len(payload)} cells)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
