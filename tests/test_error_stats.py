"""Unit tests for repro.analysis.error_stats."""

from __future__ import annotations

import pytest

from repro.analysis.error_stats import ErrorStatistics
from repro.core.strand import Cluster, StrandPool


def stats_for(reference: str, copies: list[str]) -> ErrorStatistics:
    statistics = ErrorStatistics()
    for copy in copies:
        statistics.tally_pair(reference, copy)
    return statistics


class TestBasicTallies:
    def test_perfect_copy_counts_no_errors(self):
        statistics = stats_for("ACGT", ["ACGT"])
        assert statistics.total_errors() == 0
        assert statistics.aggregate_error_rate() == 0.0

    def test_opportunities_count_reference_bases(self):
        statistics = stats_for("AACG", ["AACG", "AACG"])
        assert statistics.base_opportunities["A"] == 4
        assert statistics.total_opportunities() == 8

    def test_single_substitution_tallied(self):
        statistics = stats_for("ACGT", ["AGGT"])
        assert statistics.substitution_counts["C"] == 1
        assert statistics.substitution_pairs[("C", "G")] == 1
        assert statistics.conditional_rate("substitution", "C") == 1.0

    def test_single_deletion_tallied(self):
        statistics = stats_for("ACGT", ["AGT"])
        assert statistics.deletion_counts["C"] == 1
        assert statistics.long_deletion_count == 0

    def test_insertion_attributed_to_preceding_base(self):
        statistics = stats_for("ACGT", ["ACTGT"])
        assert statistics.insertion_counts["C"] == 1
        assert statistics.inserted_bases["T"] == 1

    def test_error_positions_histogram(self):
        statistics = stats_for("ACGT", ["AGGT"])
        assert statistics.error_positions == [0, 1, 0, 0]


class TestLongDeletions:
    def test_run_counted_once(self):
        statistics = stats_for("AACCGGTT", ["AAGGTT"])
        assert statistics.long_deletion_count == 1
        assert statistics.long_deletion_lengths[2] == 1
        # Deleted bases inside the run are excluded from single-base counts.
        assert sum(statistics.deletion_counts.values()) == 0

    def test_rates_and_mean_length(self):
        statistics = stats_for("AACCGGTT", ["AAGGTT", "AACCGGTT"])
        assert statistics.long_deletion_rate() == pytest.approx(1 / 16)
        assert statistics.mean_long_deletion_length() == pytest.approx(2.0)

    def test_length_distribution_normalised(self):
        statistics = stats_for("ACGTACGTAC", ["GTACGTAC", "ACGTACGT"])
        distribution = statistics.long_deletion_length_distribution()
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_empty_distribution(self):
        statistics = stats_for("ACGT", ["ACGT"])
        assert statistics.long_deletion_length_distribution() == {}
        assert statistics.mean_long_deletion_length() == 0.0


class TestDerivedRates:
    def test_aggregate_rates_sum(self):
        statistics = stats_for("ACGTACGTAC", ["ACGTACGTAC", "ACGTACGTAG"])
        rates = statistics.aggregate_rates()
        assert rates["substitution"] == pytest.approx(1 / 20)
        assert rates["insertion"] == 0.0

    def test_substitution_matrix_rows_normalised(self):
        statistics = stats_for("CCCC", ["ACCC", "CCCT"])
        matrix = statistics.substitution_matrix()
        assert sum(matrix["C"].values()) == pytest.approx(1.0)
        assert matrix["C"]["A"] == pytest.approx(0.5)

    def test_matrix_uniform_for_unseen_base(self):
        statistics = stats_for("AAAA", ["AAAA"])
        matrix = statistics.substitution_matrix()
        assert matrix["G"] == {
            base: pytest.approx(1 / 3) for base in "ACT"
        }

    def test_inserted_base_distribution_uniform_when_empty(self):
        statistics = stats_for("ACGT", ["ACGT"])
        assert statistics.inserted_base_distribution() == {
            base: 0.25 for base in "ACGT"
        }

    def test_positional_error_rates_normalised_by_coverage(self):
        statistics = stats_for("ACGT", ["AGGT", "AGGT"])
        rates = statistics.positional_error_rates()
        assert rates[1] == pytest.approx(1.0)
        assert rates[0] == 0.0


class TestSecondOrder:
    def test_second_order_keys(self):
        statistics = stats_for("ACGT", ["AGGT", "AGT", "ACTGT"])
        keys = {key for key, _count in statistics.second_order_counts.items()}
        assert ("substitution", "C", "G") in keys
        assert ("insertion", "", "T") in keys

    def test_top_second_order_sorted(self):
        statistics = stats_for("ACGT", ["AGGT", "AGGT", "ACGA"])
        top = statistics.top_second_order_errors(2)
        assert top[0][0] == ("substitution", "C", "G")
        assert top[0][1] == 2

    def test_second_order_fraction(self):
        statistics = stats_for("ACGT", ["AGGT", "ACGA"])
        assert statistics.second_order_fraction(1) == pytest.approx(0.5)
        assert statistics.second_order_fraction(10) == pytest.approx(1.0)

    def test_positions_tracked_per_error(self):
        statistics = stats_for("ACGT", ["AGGT"])
        histogram = statistics.second_order_positions[("substitution", "C", "G")]
        assert histogram[1] == 1

    def test_describe(self):
        statistics = ErrorStatistics()
        assert statistics.describe_second_order(("deletion", "A", "")) == "del A"
        assert statistics.describe_second_order(("insertion", "", "G")) == "ins G"
        assert (
            statistics.describe_second_order(("substitution", "T", "C"))
            == "sub T->C"
        )


class TestPoolTally:
    def test_tally_pool_caps_copies(self, small_pool):
        statistics = ErrorStatistics()
        statistics.tally_pool(small_pool, max_copies_per_cluster=1)
        assert statistics.pair_count == 2  # erasure cluster contributes none

    def test_tally_pool_all_copies(self, small_pool):
        statistics = ErrorStatistics()
        statistics.tally_pool(small_pool)
        assert statistics.pair_count == 6
