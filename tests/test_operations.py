"""Unit and property tests for repro.align.operations (Algorithm 2)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.align.edit_distance import edit_distance
from repro.align.operations import (
    EditOp,
    OpKind,
    apply_operations,
    deletion_runs,
    edit_operations,
    error_operations,
)

dna = st.text(alphabet="ACGT", max_size=30)


class TestEditOperations:
    def test_equal_strings_all_equal_ops(self):
        operations = edit_operations("ACGT", "ACGT")
        assert [op.kind for op in operations] == [OpKind.EQUAL] * 4

    def test_single_deletion(self):
        operations = error_operations("ACGT", "AGT")
        assert len(operations) == 1
        assert operations[0].kind is OpKind.DELETION
        assert operations[0].reference_base == "C"
        assert operations[0].reference_position == 1

    def test_single_insertion(self):
        operations = error_operations("ACGT", "ACTGT")
        assert len(operations) == 1
        assert operations[0].kind is OpKind.INSERTION
        assert operations[0].copy_base == "T"

    def test_single_substitution(self):
        operations = error_operations("ACGT", "ATGT")
        assert len(operations) == 1
        operation = operations[0]
        assert operation.kind is OpKind.SUBSTITUTION
        assert (operation.reference_base, operation.copy_base) == ("C", "T")

    def test_paper_worked_example(self):
        """Reference AGCG, copy AGG: maximum-likelihood single deletion of
        C (Section 3.3.1's example)."""
        operations = error_operations("AGCG", "AGG")
        assert [op.describe() for op in operations] == ["del C@2"]

    @given(dna, dna)
    def test_error_count_equals_edit_distance(self, reference, copy):
        assert len(error_operations(reference, copy)) == edit_distance(
            reference, copy
        )

    @given(dna, dna)
    def test_roundtrip_applies_to_copy(self, reference, copy):
        operations = edit_operations(reference, copy)
        assert apply_operations(reference, operations) == copy

    @given(dna, dna)
    def test_random_tiebreak_still_optimal(self, reference, copy):
        rng = random.Random(7)
        operations = edit_operations(reference, copy, rng)
        errors = [op for op in operations if op.is_error]
        assert len(errors) == edit_distance(reference, copy)
        assert apply_operations(reference, operations) == copy

    @given(dna, dna)
    def test_operations_ordered_by_reference_position(self, reference, copy):
        operations = edit_operations(reference, copy)
        positions = [op.reference_position for op in operations]
        assert positions == sorted(positions)

    def test_describe_formats(self):
        assert EditOp(OpKind.EQUAL, 0, "A", "A").describe() == "eq A@0"
        assert EditOp(OpKind.INSERTION, 3, "", "G").describe() == "ins G@3"
        assert (
            EditOp(OpKind.SUBSTITUTION, 2, "A", "C").describe() == "sub A->C@2"
        )

    def test_is_error_flags(self):
        assert not EditOp(OpKind.EQUAL, 0, "A", "A").is_error
        assert EditOp(OpKind.DELETION, 0, "A", "").is_error


class TestDeletionRuns:
    def test_consecutive_deletions_grouped(self):
        operations = error_operations("AACCGGTT", "AAGGTT")
        runs = deletion_runs(operations)
        assert runs == [(2, 2)]

    def test_separate_deletions_not_grouped(self):
        operations = error_operations("ACGTACGT", "CGTACG")
        runs = deletion_runs(operations)
        assert all(length == 1 for _start, length in runs)

    def test_long_run(self):
        operations = error_operations("ACGTACGTAC", "ACAC")
        # Six deletions total, grouped into long runs (the exact grouping
        # depends on which optimal alignment the backtrace picks).
        runs = deletion_runs(operations)
        assert sum(length for _start, length in runs) == 6
        assert max(length for _start, length in runs) >= 2

    def test_empty_operations(self):
        assert deletion_runs([]) == []

    def test_runs_ignore_other_ops_between(self):
        operations = [
            EditOp(OpKind.DELETION, 1, "C", ""),
            EditOp(OpKind.SUBSTITUTION, 2, "G", "A"),
            EditOp(OpKind.DELETION, 3, "T", ""),
        ]
        assert deletion_runs(operations) == [(1, 1), (3, 1)]
