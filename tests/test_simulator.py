"""Unit tests for repro.core.simulator."""

from __future__ import annotations

import pytest

from repro.core.coverage import ConstantCoverage
from repro.core.errors import ErrorModel
from repro.core.profile import ErrorProfile, SimulatorStage
from repro.core.simulator import Simulator


class TestSimulator:
    def test_simulate_pairs_references(self):
        simulator = Simulator(ErrorModel.naive(0.01, 0.01, 0.01), seed=1)
        references = ["ACGT" * 10, "TGCA" * 10]
        pool = simulator.simulate(references)
        assert pool.references == references
        assert pool.coverages() == [5, 5]  # default coverage

    def test_custom_coverage_model(self):
        simulator = Simulator(
            ErrorModel.naive(0.0, 0.0, 0.0), ConstantCoverage(3), seed=1
        )
        pool = simulator.simulate(["ACGT"])
        assert pool[0].copies == ["ACGT"] * 3

    def test_same_seed_reproducible(self):
        def build():
            return Simulator(
                ErrorModel.naive(0.05, 0.05, 0.05), ConstantCoverage(4), seed=9
            ).simulate(["ACGTACGTAC"] * 5)

        first, second = build(), build()
        for cluster_a, cluster_b in zip(first, second):
            assert cluster_a.copies == cluster_b.copies

    def test_different_seeds_differ(self):
        references = ["ACGTACGTACGTACGT"] * 10
        pool_a = Simulator(
            ErrorModel.naive(0.1, 0.1, 0.1), ConstantCoverage(3), seed=1
        ).simulate(references)
        pool_b = Simulator(
            ErrorModel.naive(0.1, 0.1, 0.1), ConstantCoverage(3), seed=2
        ).simulate(references)
        assert pool_a.all_copies() != pool_b.all_copies()

    def test_simulate_random_generates_references(self):
        simulator = Simulator(ErrorModel.naive(0.01, 0.01, 0.01), seed=0)
        pool = simulator.simulate_random(7, 42)
        assert len(pool) == 7
        assert all(len(cluster.reference) == 42 for cluster in pool)

    def test_simulate_like_matches_coverages(self, small_pool):
        simulator = Simulator(ErrorModel.naive(0.0, 0.0, 0.0), seed=0)
        mirrored = simulator.simulate_like(small_pool)
        assert mirrored.coverages() == small_pool.coverages()
        assert mirrored.references == small_pool.references

    def test_fitted_constructor(self, nanopore_pool):
        profile = ErrorProfile.from_pool(nanopore_pool, max_copies_per_cluster=2)
        simulator = Simulator.fitted(
            profile, SimulatorStage.CONDITIONAL, ConstantCoverage(2), seed=5
        )
        pool = simulator.simulate(nanopore_pool.references[:10])
        assert len(pool) == 10
        assert pool.coverages() == [2] * 10
