"""Unit tests for repro.align.hamming."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.align.hamming import (
    hamming_distance,
    hamming_error_positions,
    normalized_hamming_distance,
)

dna = st.text(alphabet="ACGT", max_size=30)


class TestHammingDistance:
    @pytest.mark.parametrize(
        "first, second, expected",
        [
            ("", "", 0),
            ("ACGT", "ACGT", 0),
            ("ACGT", "ACGA", 1),
            ("ACGT", "AC", 2),
            ("AC", "ACGT", 2),
            ("AAAA", "TTTT", 4),
        ],
    )
    def test_known_values(self, first, second, expected):
        assert hamming_distance(first, second) == expected

    @given(dna, dna)
    def test_symmetry(self, first, second):
        assert hamming_distance(first, second) == hamming_distance(second, first)

    @given(dna)
    def test_identity(self, strand):
        assert hamming_distance(strand, strand) == 0

    @given(dna, dna)
    def test_at_least_length_difference(self, first, second):
        assert hamming_distance(first, second) >= abs(len(first) - len(second))


class TestNormalized:
    def test_empty_is_zero(self):
        assert normalized_hamming_distance("", "") == 0.0

    @given(dna, dna)
    def test_unit_interval(self, first, second):
        assert 0.0 <= normalized_hamming_distance(first, second) <= 1.0


class TestErrorPositions:
    def test_paper_worked_example(self):
        """Reference AGTC, copy ATC: Hamming errors at positions 1, 2, 3
        (Section 3.2)."""
        assert hamming_error_positions("AGTC", "ATC") == [1, 2, 3]

    def test_long_copy_tail_counts(self):
        assert hamming_error_positions("AC", "ACGT") == [2, 3]

    def test_identical_no_errors(self):
        assert hamming_error_positions("ACGT", "ACGT") == []

    @given(dna, dna)
    def test_count_matches_distance(self, reference, other):
        assert len(hamming_error_positions(reference, other)) == hamming_distance(
            reference, other
        )
