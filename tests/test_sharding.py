"""Tests for the sharding layer: plans, streaming IO, and stage equivalence.

The load-bearing invariant throughout is **shard-count invariance**: for
every associatively-merged stage (generation, profiling, reconstruction,
curves, accuracy), running sharded must produce results bit-identical to
the serial path.  Greedy clustering is the documented exception (an
approximation, asserted only for sanity), and the archive survey draws
different same-distribution noise (asserted to recover the data, not to
match serial bytes).
"""

from __future__ import annotations

import filecmp
import random

import pytest

from repro.core.coverage import ConstantCoverage
from repro.core.errors import ErrorModel
from repro.core.profile import ErrorProfile
from repro.core.simulator import Simulator
from repro.core.strand import Cluster, StrandPool
from repro.data.io import PoolWriter, iter_pool, read_pool, write_pool
from repro.data.nanopore import (
    NanoporeParameters,
    iter_nanopore_clusters,
    make_sharded_nanopore_dataset,
)
from repro.exceptions import ConfigError
from repro.metrics.accuracy import AccuracyTally
from repro.metrics.curves import post_reconstruction_curves, pre_reconstruction_curves
from repro.reconstruct.majority import PositionalMajority
from repro.sharding import (
    ShardPlan,
    batched,
    default_shards,
    resolve_shards,
    run_fullscale,
    set_default_shards,
    shard_of,
)


# --------------------------------------------------------------------- #
# Plans
# --------------------------------------------------------------------- #


class TestShardOf:
    def test_deterministic_and_in_range(self):
        for n_shards in (1, 2, 7):
            for strand in ("ACGT", "TTTT", ""):
                shard = shard_of(strand, seed=3, n_shards=n_shards)
                assert shard == shard_of(strand, seed=3, n_shards=n_shards)
                assert 0 <= shard < n_shards

    def test_seed_changes_assignment(self):
        strands = [f"STRAND{i}" for i in range(64)]
        a = [shard_of(s, seed=0, n_shards=8) for s in strands]
        b = [shard_of(s, seed=1, n_shards=8) for s in strands]
        assert a != b

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError, match="n_shards"):
            shard_of("ACGT", seed=0, n_shards=0)


class TestShardPlan:
    def test_by_id_split_scatter_roundtrip(self):
        ids = [f"ID{i}" for i in range(23)]
        plan = ShardPlan.by_id(ids, n_shards=5)
        items = list(range(23))
        assert plan.scatter(plan.split(items)) == items

    def test_by_id_is_order_independent(self):
        ids = [f"ID{i}" for i in range(40)]
        plan = ShardPlan.by_id(ids, n_shards=4)
        shuffled = list(ids)
        random.Random(9).shuffle(shuffled)
        shuffled_plan = ShardPlan.by_id(shuffled, n_shards=4)
        # The same id lands in the same shard regardless of pool order.
        by_id = {ids[i]: s for s, bucket in enumerate(plan.indices) for i in bucket}
        by_id_shuffled = {
            shuffled[i]: s
            for s, bucket in enumerate(shuffled_plan.indices)
            for i in bucket
        }
        assert by_id == by_id_shuffled

    def test_contiguous_concatenation_restores_order(self):
        for n_items, n_shards in [(0, 3), (7, 3), (12, 4), (5, 8)]:
            plan = ShardPlan.contiguous(n_items, n_shards)
            flattened = [index for bucket in plan.indices for index in bucket]
            assert flattened == list(range(n_items))

    def test_shard_sizes_sum_to_items(self):
        plan = ShardPlan.by_id([f"ID{i}" for i in range(31)], n_shards=6)
        assert sum(plan.shard_sizes()) == plan.n_items == 31

    def test_split_rejects_wrong_length(self):
        plan = ShardPlan.contiguous(4, 2)
        with pytest.raises(ValueError, match="plan covers"):
            plan.split([1, 2, 3])

    def test_scatter_rejects_wrong_shapes(self):
        plan = ShardPlan.contiguous(4, 2)
        with pytest.raises(ValueError, match="shards"):
            plan.scatter([[1, 2]])
        with pytest.raises(ValueError, match="produced"):
            plan.scatter([[1], [2, 3, 4]])


class TestBatched:
    def test_batches_preserve_order(self):
        assert list(batched(range(7), 3)) == [[0, 1, 2], [3, 4, 5], [6]]

    def test_accepts_generators(self):
        assert list(batched((i for i in range(4)), 2)) == [[0, 1], [2, 3]]

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError, match="batch_size"):
            list(batched([1], 0))


class TestDefaultResolution:
    def test_resolve_none_uses_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        set_default_shards(None)
        assert resolve_shards(None) == 1

    def test_env_variable_sets_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "4")
        set_default_shards(None)
        assert default_shards() == 4

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "4")
        set_default_shards(2)
        try:
            assert resolve_shards(None) == 2
        finally:
            set_default_shards(None)

    def test_malformed_env_falls_back_to_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "not-a-number")
        set_default_shards(None)
        assert default_shards() == 1

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "4")
        assert resolve_shards(3) == 3

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="shards"):
            resolve_shards(0)
        with pytest.raises(ValueError, match="shards"):
            set_default_shards(0)


# --------------------------------------------------------------------- #
# Streaming IO
# --------------------------------------------------------------------- #


class TestPoolWriter:
    def test_byte_identical_to_write_pool(self, small_pool, tmp_path):
        whole = tmp_path / "whole.txt"
        streamed = tmp_path / "streamed.txt"
        write_pool(small_pool, whole)
        with PoolWriter(streamed) as writer:
            for cluster in small_pool:
                writer.write_cluster(cluster)
        assert filecmp.cmp(whole, streamed, shallow=False)

    def test_counts_clusters_and_copies(self, small_pool, tmp_path):
        with PoolWriter(tmp_path / "pool.txt") as writer:
            writer.write_all(small_pool)
        assert writer.n_clusters == len(small_pool)
        assert writer.n_copies == sum(len(c.copies) for c in small_pool)

    def test_iter_pool_roundtrip(self, small_pool, tmp_path):
        path = tmp_path / "pool.txt"
        write_pool(small_pool, path)
        clusters = list(iter_pool(path))
        assert [c.reference for c in clusters] == small_pool.references
        assert [c.copies for c in clusters] == [c.copies for c in small_pool]

    def test_iter_pool_matches_read_pool(self, small_pool, tmp_path):
        path = tmp_path / "pool.txt"
        write_pool(small_pool, path)
        streamed = StrandPool(list(iter_pool(path)))
        loaded = read_pool(path)
        assert streamed.references == loaded.references

    def test_iter_pool_rejects_malformed_file(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("ACGT\nACGA\n")
        with pytest.raises(ValueError, match="separator"):
            list(iter_pool(path))


# --------------------------------------------------------------------- #
# Sharded generation
# --------------------------------------------------------------------- #


class TestShardedGeneration:
    def test_invariant_across_shard_counts(self):
        base = make_sharded_nanopore_dataset(n_clusters=24, seed=11, shards=1)
        for shards in (2, 5):
            other = make_sharded_nanopore_dataset(
                n_clusters=24, seed=11, shards=shards
            )
            assert other.references == base.references
            assert [c.copies for c in other] == [c.copies for c in base]

    def test_invariant_across_worker_counts(self, monkeypatch):
        base = make_sharded_nanopore_dataset(n_clusters=16, seed=4, shards=2)
        monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")
        parallel = make_sharded_nanopore_dataset(
            n_clusters=16, seed=4, shards=2, workers=2
        )
        assert parallel.references == base.references
        assert [c.copies for c in parallel] == [c.copies for c in base]

    def test_iterator_matches_materialised(self):
        pool = make_sharded_nanopore_dataset(n_clusters=12, seed=6, shards=3)
        streamed = list(
            iter_nanopore_clusters(n_clusters=12, seed=6, shards=3)
        )
        assert [c.reference for c in streamed] == pool.references
        assert [c.copies for c in streamed] == [c.copies for c in pool]

    def test_seed_changes_data(self):
        a = make_sharded_nanopore_dataset(n_clusters=6, seed=1, shards=2)
        b = make_sharded_nanopore_dataset(n_clusters=6, seed=2, shards=2)
        assert a.references != b.references


# --------------------------------------------------------------------- #
# Stage equivalence: serial vs sharded
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def stage_pool() -> StrandPool:
    """A modest pool exercised by every stage-equivalence test below."""
    return make_sharded_nanopore_dataset(n_clusters=30, seed=21, shards=1)


class TestStageEquivalence:
    def test_profile_fit_sharded_is_bit_identical(self, stage_pool):
        serial = ErrorProfile.from_pool(stage_pool, max_copies_per_cluster=3)
        sharded = ErrorProfile.from_pool(
            stage_pool, max_copies_per_cluster=3, shards=4
        )
        assert sharded.statistics.pair_count == serial.statistics.pair_count
        assert (
            sharded.statistics.substitution_pairs
            == serial.statistics.substitution_pairs
        )
        assert (
            sharded.statistics.error_positions == serial.statistics.error_positions
        )
        assert (
            sharded.statistics.long_deletion_lengths
            == serial.statistics.long_deletion_lengths
        )

    def test_profile_fit_streaming_matches_pool(self, stage_pool):
        whole = ErrorProfile.from_pool(stage_pool, max_copies_per_cluster=3)
        streamed = ErrorProfile.from_clusters(
            iter(stage_pool), max_copies_per_cluster=3, batch_size=7
        )
        assert (
            streamed.statistics.substitution_pairs
            == whole.statistics.substitution_pairs
        )
        assert streamed.statistics.pair_count == whole.statistics.pair_count

    def test_reconstruct_pool_sharded_matches_serial(self, stage_pool):
        reconstructor = PositionalMajority()
        length = len(stage_pool.references[0])
        serial = reconstructor.reconstruct_pool(stage_pool, length)
        sharded = reconstructor.reconstruct_pool(stage_pool, length, shards=4)
        assert sharded == serial

    def test_curves_sharded_match_serial(self, stage_pool):
        pre_serial = pre_reconstruction_curves(stage_pool)
        pre_sharded = pre_reconstruction_curves(stage_pool, shards=3)
        assert pre_serial == pre_sharded
        estimates = PositionalMajority().reconstruct_pool(
            stage_pool, len(stage_pool.references[0])
        )
        post_serial = post_reconstruction_curves(stage_pool, estimates)
        post_sharded = post_reconstruction_curves(stage_pool, estimates, shards=3)
        assert post_serial == post_sharded

    def test_accuracy_tally_merge_matches_whole(self, stage_pool):
        estimates = PositionalMajority().reconstruct_pool(
            stage_pool, len(stage_pool.references[0])
        )
        whole = AccuracyTally()
        whole.update_many(stage_pool.references, estimates)
        left, right = AccuracyTally(), AccuracyTally()
        half = len(estimates) // 2
        left.update_many(stage_pool.references[:half], estimates[:half])
        right.update_many(stage_pool.references[half:], estimates[half:])
        left.merge(right)
        assert left.report() == whole.report()


# --------------------------------------------------------------------- #
# Simulator streaming
# --------------------------------------------------------------------- #


class TestSimulatorShards:
    def _simulator(self, per_cluster_seeds: bool) -> Simulator:
        return Simulator(
            ErrorModel.uniform(0.06),
            ConstantCoverage(4),
            seed=13,
            per_cluster_seeds=per_cluster_seeds,
        )

    def test_iter_shards_matches_simulate(self):
        references = [
            "".join(random.Random(i).choices("ACGT", k=60)) for i in range(18)
        ]
        simulator = self._simulator(per_cluster_seeds=True)
        whole = simulator.simulate(references)
        streamed = list(
            self._simulator(per_cluster_seeds=True).iter_shards(
                references, shards=4
            )
        )
        assert [c.reference for c in streamed] == whole.references
        assert [c.copies for c in streamed] == [c.copies for c in whole]

    def test_iter_shards_requires_per_cluster_seeds(self):
        simulator = self._simulator(per_cluster_seeds=False)
        with pytest.raises(ConfigError, match="per_cluster_seeds"):
            list(simulator.iter_shards(["ACGT" * 10]))

    def test_simulate_rejects_shards_without_per_cluster_seeds(self):
        simulator = self._simulator(per_cluster_seeds=False)
        with pytest.raises(ConfigError, match="per_cluster_seeds"):
            simulator.simulate(["ACGT" * 10], shards=2)


# --------------------------------------------------------------------- #
# Greedy clustering (documented approximation)
# --------------------------------------------------------------------- #


class TestShardedClustering:
    def test_sharded_sweep_recovers_well_separated_clusters(self):
        from repro.cluster.greedy import GreedyClusterer

        rng = random.Random(77)
        references = [
            "".join(rng.choices("ACGT", k=80)) for _ in range(10)
        ]
        channel_pool = Simulator(
            ErrorModel.uniform(0.03), ConstantCoverage(5), seed=5
        ).simulate(references)
        reads = [copy for cluster in channel_pool for copy in cluster.copies]
        clusterer = GreedyClusterer()
        serial = clusterer.cluster(reads)
        sharded = clusterer.cluster(reads, shards=3)
        # An approximation, but on well-separated data both modes must
        # find one cluster per reference and agree on who groups with whom.
        assert sharded.n_clusters == serial.n_clusters == len(references)
        serial_groups = {
            frozenset(members) for members in serial.members if members
        }
        sharded_groups = {
            frozenset(members) for members in sharded.members if members
        }
        assert sharded_groups == serial_groups


# --------------------------------------------------------------------- #
# Full-scale runner
# --------------------------------------------------------------------- #


class TestRunFullscale:
    def test_shard_count_never_changes_results(self):
        base = run_fullscale(
            n_clusters=12, strand_length=60, seed=5, shards=1,
            algorithms=("majority",),
        )
        for shards in (2, 4):
            other = run_fullscale(
                n_clusters=12, strand_length=60, seed=5, shards=shards,
                algorithms=("majority",),
            )
            assert other.n_reads == base.n_reads
            assert other.aggregate_error_rate == base.aggregate_error_rate
            assert other.accuracy["majority"] == base.accuracy["majority"]
            assert other.n_erasures == base.n_erasures

    def test_summary_is_json_ready(self):
        import json

        result = run_fullscale(
            n_clusters=6, strand_length=40, seed=1, shards=2,
            algorithms=("majority",),
        )
        summary = result.summary()
        json.dumps(summary)  # must not raise
        assert summary["n_clusters"] == 6
        assert summary["n_shards"] == 2
        assert "majority" in summary["accuracy"]

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ConfigError, match="algorithm"):
            run_fullscale(n_clusters=2, algorithms=("nope",))

    def test_custom_parameters_flow_through(self):
        quiet = NanoporeParameters(
            substitution_rate=0.001,
            deletion_rate=0.001,
            insertion_rate=0.001,
            long_deletion_rate=0.0,
            burst_rate=0.0,
        )
        result = run_fullscale(
            n_clusters=8, strand_length=50, seed=3, shards=2,
            algorithms=("majority",), parameters=quiet,
        )
        loud = run_fullscale(
            n_clusters=8, strand_length=50, seed=3, shards=2,
            algorithms=("majority",),
        )
        assert result.aggregate_error_rate < loud.aggregate_error_rate


# --------------------------------------------------------------------- #
# Sharded archive read
# --------------------------------------------------------------------- #


class TestShardedArchive:
    def test_sharded_read_recovers_data(self):
        from repro.pipeline.storage import DNAArchive

        gentle = ErrorModel.uniform(0.01)
        data = b"sharded archive read-path test payload!!"
        archive = DNAArchive(seed=23)
        archive.write("doc", data)
        for shards in (1, 3):
            report = archive.read(
                "doc", channel_model=gentle, coverage=10, shards=shards
            )
            assert report.data == data
