"""Cross-backend equivalence for the vectorised channel sweep (ISSUE 8).

In the style of ``TestBatchedBackendEquivalence``: the ``vectorised``
backend must be byte-identical to the ``python`` reference loop — same
pools, same copies, and the same final ``random.Random`` state (the
draw-order contract) — across every model stage (bursts, second-order
errors, long deletions, spatial weights, homopolymer scaling), both RNG
modes (serial stream and ``per_cluster_seeds``), and degenerate inputs
(empty references, coverage 0, all-homopolymer strands, burst-heavy
models).  Dispatch (env var / override / auto threshold) is covered at
the end.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.core.alphabet import homopolymer_mask, random_strand
from repro.core.channel import Channel
from repro.core.channel_backend import (
    AUTO_MIN_DRAWS,
    CHANNEL_BACKENDS,
    channel_backend,
    homopolymer_mask_fast,
    rng_supports_bulk,
    set_channel_backend,
)
from repro.core.coverage import ConstantCoverage, NegativeBinomialCoverage
from repro.core.errors import ErrorModel
from repro.core.profile import ErrorProfile, SimulatorStage
from repro.core.simulator import Simulator
from repro.core.strand import StrandPool
from repro.data.nanopore import (
    ground_truth_model,
    iter_nanopore_clusters,
    make_nanopore_dataset,
)
from repro.exceptions import ConfigError

MAIN_SEED = 20260808


@pytest.fixture(autouse=True)
def _restore_backend():
    yield
    set_channel_backend(None)


def _ground(**overrides) -> ErrorModel:
    return dataclasses.replace(ground_truth_model(), **overrides)


#: One model per channel stage/regime the walk special-cases.
MODELS = {
    "ground_truth": ground_truth_model(),
    "naive": ErrorModel.naive(0.006, 0.010, 0.019),
    "zero_rate": ErrorModel.naive(0.0, 0.0, 0.0),
    "high_rate": ErrorModel.naive(0.15, 0.20, 0.25),
    "burst_heavy": _ground(burst_rate=0.05),
    "long_deletion_heavy": _ground(long_deletion_rate=0.05),
    "homopolymer_factor_zero": _ground(homopolymer_factor=0.0),
    "no_homopolymer_scaling": _ground(homopolymer_factor=1.0),
}


def _flatten(pool: StrandPool) -> list[tuple[str, list[str]]]:
    return [(cluster.reference, list(cluster.copies)) for cluster in pool]


def _references(rng: random.Random) -> list[str]:
    """Degenerate shapes beside paper-shaped strands: empty, length-1,
    all-homopolymer, and mixed lengths straddling the chunk maths."""
    strands = ["", "A", "A" * 110, "ACGT" * 30]
    strands += [random_strand(length, rng) for length in (5, 110, 110, 333)]
    return strands


class TestBackendEquivalence:
    """Pools and final RNG states must match bit for bit."""

    @pytest.mark.parametrize("model_name", sorted(MODELS))
    def test_transmit_pool_identical(self, model_name):
        model = MODELS[model_name]
        coverage = NegativeBinomialCoverage(8.0, 2.0)
        pools, states = {}, {}
        for backend in ("python", "vectorised"):
            set_channel_backend(backend)
            rng = random.Random(MAIN_SEED)
            channel = Channel(model, rng)
            references = _references(random.Random(MAIN_SEED + 1))
            pools[backend] = _flatten(
                channel.transmit_pool(references, coverage)
            )
            states[backend] = rng.getstate()
        assert pools["vectorised"] == pools["python"], model_name
        assert states["vectorised"] == states["python"], model_name

    @pytest.mark.parametrize("model_name", sorted(MODELS))
    def test_transmit_many_identical(self, model_name):
        model = MODELS[model_name]
        outputs, states = {}, {}
        for backend in ("python", "vectorised"):
            set_channel_backend(backend)
            rng = random.Random(MAIN_SEED + 2)
            channel = Channel(model, rng)
            copies: list[list[str]] = []
            for reference in _references(random.Random(MAIN_SEED + 3)):
                copies.append(channel.transmit_many(reference, 25))
            outputs[backend] = copies
            states[backend] = rng.getstate()
        assert outputs["vectorised"] == outputs["python"], model_name
        assert states["vectorised"] == states["python"], model_name

    def test_degenerate_coverage_and_reference(self):
        for backend in ("python", "vectorised"):
            set_channel_backend(backend)
            rng = random.Random(MAIN_SEED)
            channel = Channel(ground_truth_model(), rng)
            assert channel.transmit_many("ACGT" * 30, 0) == []
            assert channel.transmit_many("", 7) == [""] * 7
            assert channel.transmit("") == ""
            # Degenerate calls consume no randomness on either backend.
            assert rng.getstate() == random.Random(MAIN_SEED).getstate()

    def test_interleaved_transmits_share_the_stream(self):
        """Mixing transmit/transmit_many/raw rng draws stays in lockstep:
        the bulk source must leave the Python RNG exactly where the
        serial loop would have."""
        results, states = {}, {}
        for backend in ("python", "vectorised"):
            set_channel_backend(backend)
            rng = random.Random(MAIN_SEED + 4)
            channel = Channel(ground_truth_model(), rng)
            trace = []
            for round_index in range(4):
                trace.append(channel.transmit_many("ACGT" * 30, 9))
                trace.append(rng.random())  # raw draw between bulk calls
                trace.append(channel.transmit(random_strand(110, rng)))
            results[backend] = trace
            states[backend] = rng.getstate()
        assert results["vectorised"] == results["python"]
        assert states["vectorised"] == states["python"]


class TestSimulatorEquivalence:
    """Both RNG modes of the Simulator, plus the streamed generator."""

    @pytest.fixture(scope="class")
    def profile(self) -> ErrorProfile:
        pool = make_nanopore_dataset(n_clusters=30, seed=MAIN_SEED)
        return ErrorProfile.from_pool(pool)

    @pytest.mark.parametrize("stage", list(SimulatorStage))
    def test_serial_stream_identical_across_stages(self, profile, stage):
        references = [
            random_strand(110, random.Random(MAIN_SEED + 5)) for _ in range(12)
        ]
        pools = {}
        for backend in ("python", "vectorised"):
            set_channel_backend(backend)
            simulator = Simulator.fitted(
                profile, stage=stage, coverage=ConstantCoverage(6), seed=17
            )
            pools[backend] = _flatten(simulator.simulate(references))
        assert pools["vectorised"] == pools["python"], stage

    def test_per_cluster_seeds_identical(self):
        references = [
            random_strand(110, random.Random(MAIN_SEED + 6)) for _ in range(10)
        ]
        pools = {}
        for backend in ("python", "vectorised"):
            set_channel_backend(backend)
            simulator = Simulator(
                ground_truth_model(),
                coverage=ConstantCoverage(5),
                seed=23,
                per_cluster_seeds=True,
            )
            pools[backend] = _flatten(
                simulator.simulate(references, workers=1)
            )
        assert pools["vectorised"] == pools["python"]

    def test_streamed_nanopore_identical(self):
        clusters = {}
        for backend in ("python", "vectorised"):
            set_channel_backend(backend)
            clusters[backend] = [
                (cluster.reference, list(cluster.copies))
                for cluster in iter_nanopore_clusters(
                    n_clusters=20, seed=MAIN_SEED, shards=3, workers=1
                )
            ]
        assert clusters["vectorised"] == clusters["python"]


class TestFastMask:
    """The vectorised homopolymer mask must equal the reference scan."""

    def test_matches_reference_implementation(self):
        rng = random.Random(MAIN_SEED)
        strands = ["", "A", "AA", "ACGT" * 30, "A" * 110, "AABBAACC"]
        strands += [random_strand(length, rng) for length in (2, 3, 110, 257)]
        strands += [
            "".join(rng.choice("AACCGT") for _ in range(50)) for _ in range(20)
        ]
        for strand in strands:
            assert homopolymer_mask_fast(strand) == homopolymer_mask(strand)

    def test_non_ascii_falls_back(self):
        assert homopolymer_mask_fast("AAééT") is None


class TestDispatch:
    """Selection order: override, then env var, then auto."""

    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHANNEL_BACKEND", raising=False)
        assert channel_backend() == "auto"

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHANNEL_BACKEND", "vectorised")
        assert channel_backend() == "vectorised"

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHANNEL_BACKEND", "python")
        set_channel_backend("vectorised")
        assert channel_backend() == "vectorised"
        set_channel_backend(None)
        assert channel_backend() == "python"

    def test_unknown_override_raises_config_error(self):
        with pytest.raises(ConfigError):
            set_channel_backend("cuda")

    def test_unknown_env_raises_config_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHANNEL_BACKEND", "simd")
        with pytest.raises(ConfigError):
            channel_backend()

    def test_backend_names_are_stable(self):
        assert CHANNEL_BACKENDS == ("auto", "python", "vectorised")

    def test_auto_threshold(self):
        channel = Channel(ground_truth_model(), random.Random(0))
        set_channel_backend("auto")
        assert channel._resolve_backend(AUTO_MIN_DRAWS) == "vectorised"
        assert channel._resolve_backend(AUTO_MIN_DRAWS - 1) == "python"
        set_channel_backend("python")
        assert channel._resolve_backend(10**9) == "python"

    def test_subclassed_rng_degrades_to_python(self):
        class LoggedRandom(random.Random):
            pass

        assert not rng_supports_bulk(LoggedRandom(0))
        channel = Channel(ground_truth_model(), LoggedRandom(0))
        set_channel_backend("vectorised")
        # Forced vectorised still degrades (bit-identical either way).
        assert channel._resolve_backend(10**9) == "python"
        reference = "ACGT" * 30
        copies = channel.transmit_many(reference, 20)
        set_channel_backend("python")
        assert copies == Channel(
            ground_truth_model(), LoggedRandom(0)
        ).transmit_many(reference, 20)
