"""Unit and property tests for the LT fountain code."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline.fountain import (
    Droplet,
    FountainDecodeError,
    FountainDecoder,
    FountainEncoder,
    fountain_decode,
    fountain_encode,
    robust_soliton,
)


class TestRobustSoliton:
    @pytest.mark.parametrize("n_chunks", [1, 2, 10, 100])
    def test_is_probability_distribution(self, n_chunks):
        distribution = robust_soliton(n_chunks)
        assert len(distribution) == n_chunks
        assert sum(distribution) == pytest.approx(1.0)
        assert all(p >= 0 for p in distribution)

    def test_degree_one_mass_nonzero(self):
        # The peeling decoder needs degree-1 droplets to start.
        assert robust_soliton(50)[0] > 0.01

    def test_invalid_n_chunks(self):
        with pytest.raises(ValueError):
            robust_soliton(0)


class TestEncoder:
    def test_droplet_stream_deterministic_per_seed(self):
        chunks = [b"aa", b"bb", b"cc"]
        first = FountainEncoder(chunks, seed=5).droplets(10)
        second = FountainEncoder(chunks, seed=5).droplets(10)
        assert first == second

    def test_unequal_chunks_rejected(self):
        with pytest.raises(ValueError):
            FountainEncoder([b"a", b"bb"])

    def test_empty_chunks_rejected(self):
        with pytest.raises(ValueError):
            FountainEncoder([])

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            FountainEncoder([b"ab"]).droplets(-1)

    def test_single_chunk_droplets_are_the_chunk(self):
        encoder = FountainEncoder([b"xy"], seed=0)
        for droplet in encoder.droplets(5):
            assert droplet.payload == b"xy"


class TestDecoder:
    def test_roundtrip_with_overhead(self):
        data = bytes(range(200))
        droplets, n_chunks = fountain_encode(data, chunk_size=16, seed=3)
        assert fountain_decode(droplets, n_chunks, 16, len(data)) == data

    def test_erasure_resilience(self):
        """Losing a third of the droplets still decodes with enough
        overhead — the point of a fountain code for DNA erasures."""
        data = bytes(range(240))
        droplets, n_chunks = fountain_encode(
            data, chunk_size=16, overhead=1.5, seed=4
        )
        rng = random.Random(9)
        surviving = [d for d in droplets if rng.random() > 0.33]
        assert fountain_decode(surviving, n_chunks, 16, len(data)) == data

    def test_insufficient_droplets_raise(self):
        data = bytes(range(160))
        droplets, n_chunks = fountain_encode(data, chunk_size=16, seed=5)
        with pytest.raises(FountainDecodeError):
            fountain_decode(droplets[:2], n_chunks, 16, len(data))

    def test_wrong_payload_size_rejected(self):
        decoder = FountainDecoder(4, chunk_size=8)
        with pytest.raises(ValueError):
            decoder.add_droplet(Droplet(1, b"short"))

    def test_droplet_order_irrelevant(self):
        data = bytes(range(120))
        droplets, n_chunks = fountain_encode(
            data, chunk_size=8, overhead=0.8, seed=6
        )
        shuffled = list(droplets)
        random.Random(1).shuffle(shuffled)
        assert fountain_decode(shuffled, n_chunks, 8, len(data)) == data

    @settings(max_examples=20, deadline=None)
    @given(
        data=st.binary(min_size=1, max_size=150),
        seed=st.integers(0, 1000),
    )
    def test_roundtrip_property(self, data, seed):
        """The fountain property: *some* finite number of droplets always
        suffices (decoding is probabilistic, so keep drawing)."""
        chunk_size = 8
        chunks = []
        for start in range(0, len(data), chunk_size):
            chunk = data[start : start + chunk_size]
            chunks.append(chunk + bytes(chunk_size - len(chunk)))
        encoder = FountainEncoder(chunks, seed)
        decoder = FountainDecoder(len(chunks), chunk_size)
        for _ in range(20 * len(chunks) + 40):
            decoder.add_droplet(encoder.droplet())
            if decoder.is_complete:
                break
        assert decoder.data()[: len(data)] == data

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            fountain_encode(b"data", chunk_size=0)
