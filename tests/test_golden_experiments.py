"""Golden-value regression tests for the headline experiments.

``tests/golden/*.json`` hold the exact outputs of ``fig_3_2`` and
``table_2_1`` at a fixed 40-cluster scale and fixed seeds.  The tests
assert **exact equality** — every experiment stage is deterministic end
to end — and re-run the same experiments under forced process-pool
parallelism and under a sharded default, proving the execution strategy
never changes a single published number (the shard-count-invariance
contract of DESIGN.md section 11).

Regenerating the goldens after an *intentional* numeric change::

    PYTHONPATH=src REPRO_CACHE_DIR=$(mktemp -d) python - <<'REGEN'
    import json, pathlib
    from repro.experiments import fig_3_2, table_2_1
    from repro.experiments.common import clear_contexts
    fig = fig_3_2.run(n_clusters=40, verbose=False)
    clear_contexts()
    table = table_2_1.run(n_clusters=40, verbose=False)
    golden = pathlib.Path("tests/golden")
    for name, payload in [("fig_3_2", fig), ("table_2_1", table)]:
        golden.joinpath(f"{name}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
    REGEN
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.experiments import fig_3_2, table_2_1
from repro.experiments.common import clear_contexts
from repro.sharding import set_default_shards

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: The scale the goldens were recorded at.
GOLDEN_N_CLUSTERS = 40


def _load(name: str) -> dict:
    return json.loads((GOLDEN_DIR / f"{name}.json").read_text())


def _normalise(payload: dict) -> dict:
    """Round-trip through JSON so tuples/lists and key types compare the
    way the stored golden does."""
    return json.loads(json.dumps(payload, sort_keys=True))


@pytest.fixture
def private_cache(tmp_path, monkeypatch):
    """Each test builds its context from scratch in a private cache, so
    no artifact produced under one execution strategy can leak into the
    next (that would make the equality vacuous)."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    clear_contexts()
    yield
    clear_contexts()


def _run_experiment(runner) -> dict:
    return _normalise(runner.run(n_clusters=GOLDEN_N_CLUSTERS, verbose=False))


class TestSerialMatchesGolden:
    def test_fig_3_2(self, private_cache):
        assert _run_experiment(fig_3_2) == _load("fig_3_2")

    def test_table_2_1(self, private_cache):
        assert _run_experiment(table_2_1) == _load("table_2_1")


class TestParallelMatchesGolden:
    """Forced process-pool execution must reproduce the goldens exactly."""

    @pytest.fixture(autouse=True)
    def forced_parallel(self, private_cache, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_PARALLEL", "1")
        monkeypatch.setenv("REPRO_WORKERS", "2")

    def test_fig_3_2(self):
        assert _run_experiment(fig_3_2) == _load("fig_3_2")

    def test_table_2_1(self):
        assert _run_experiment(table_2_1) == _load("table_2_1")


class TestShardedMatchesGolden:
    """A sharded default (as installed by ``dnasim --shards``) must
    reproduce the goldens bit for bit."""

    @pytest.fixture(autouse=True)
    def sharded_default(self, private_cache):
        set_default_shards(2)
        yield
        set_default_shards(None)

    def test_fig_3_2(self):
        assert _run_experiment(fig_3_2) == _load("fig_3_2")

    def test_table_2_1(self):
        assert _run_experiment(table_2_1) == _load("table_2_1")
