"""Unit and property tests for the Reed-Solomon code."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline.reed_solomon import ReedSolomon, ReedSolomonError


class TestEncoding:
    def test_systematic_prefix(self):
        rs = ReedSolomon(4)
        data = bytes(range(10))
        assert rs.encode(data)[:10] == data

    def test_parity_length(self):
        rs = ReedSolomon(6)
        assert len(rs.encode(bytes(10))) == 16

    def test_valid_codeword_checks(self):
        rs = ReedSolomon(4)
        assert rs.check(rs.encode(b"hello"))

    def test_corrupted_codeword_fails_check(self):
        rs = ReedSolomon(4)
        codeword = bytearray(rs.encode(b"hello"))
        codeword[0] ^= 1
        assert not rs.check(bytes(codeword))

    def test_oversized_codeword_rejected(self):
        rs = ReedSolomon(8)
        with pytest.raises(ValueError):
            rs.encode(bytes(250))

    def test_invalid_parity_count(self):
        with pytest.raises(ValueError):
            ReedSolomon(0)
        with pytest.raises(ValueError):
            ReedSolomon(255)


class TestDecoding:
    def test_clean_codeword_decodes(self):
        rs = ReedSolomon(4)
        assert rs.decode(rs.encode(b"payload")) == b"payload"

    def test_corrects_single_error(self):
        rs = ReedSolomon(4)
        codeword = bytearray(rs.encode(b"payload"))
        codeword[3] ^= 0x5A
        assert rs.decode(bytes(codeword)) == b"payload"

    def test_corrects_errors_up_to_half_parity(self):
        rs = ReedSolomon(8)
        data = bytes(range(40))
        codeword = bytearray(rs.encode(data))
        for position in (0, 13, 29, 44):
            codeword[position] ^= 0xFF
        assert rs.decode(bytes(codeword)) == data

    def test_corrects_full_parity_of_erasures(self):
        rs = ReedSolomon(8)
        data = bytes(range(40))
        codeword = bytearray(rs.encode(data))
        erasures = [1, 7, 19, 23, 31, 40, 41, 47]
        for position in erasures:
            codeword[position] = 0
        assert rs.decode(bytes(codeword), erasure_positions=erasures) == data

    def test_mixed_errors_and_erasures(self):
        rs = ReedSolomon(6)
        data = bytes(range(30))
        codeword = bytearray(rs.encode(data))
        codeword[2] ^= 0x77  # one unknown error (costs 2)
        codeword[10] = 0  # erasures (cost 1 each)
        codeword[20] = 0
        assert rs.decode(bytes(codeword), erasure_positions=[10, 20]) == data

    def test_too_many_errors_raises(self):
        rs = ReedSolomon(4)
        codeword = bytearray(rs.encode(bytes(range(30))))
        for position in (0, 5, 9):
            codeword[position] ^= 0xFF
        with pytest.raises(ReedSolomonError):
            rs.decode(bytes(codeword))

    def test_too_many_erasures_raises(self):
        rs = ReedSolomon(2)
        codeword = rs.encode(bytes(10))
        with pytest.raises(ReedSolomonError):
            rs.decode(codeword, erasure_positions=[0, 1, 2])

    def test_erasure_position_out_of_range(self):
        rs = ReedSolomon(2)
        codeword = rs.encode(bytes(10))
        with pytest.raises(ValueError):
            rs.decode(codeword, erasure_positions=[99])


class TestPropertyBased:
    @settings(max_examples=40, deadline=None)
    @given(
        data=st.binary(min_size=1, max_size=60),
        n_parity=st.sampled_from([2, 4, 8, 16]),
        seed=st.integers(0, 10_000),
    )
    def test_random_correctable_corruption_roundtrips(
        self, data, n_parity, seed
    ):
        rng = random.Random(seed)
        rs = ReedSolomon(n_parity)
        codeword = bytearray(rs.encode(data))
        n_errors = rng.randint(0, n_parity // 2)
        n_erasures = rng.randint(0, n_parity - 2 * n_errors)
        positions = rng.sample(range(len(codeword)), n_errors + n_erasures)
        for position in positions[:n_errors]:
            codeword[position] ^= rng.randrange(1, 256)
        for position in positions[n_errors:]:
            codeword[position] = rng.randrange(256)
        decoded = rs.decode(
            bytes(codeword), erasure_positions=positions[n_errors:]
        )
        assert decoded == data
