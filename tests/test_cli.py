"""End-to-end tests for the dnasim command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.data.io import read_pool, write_pool, write_references


@pytest.fixture
def dataset_file(tmp_path, nanopore_pool):
    path = tmp_path / "real.txt"
    write_pool(nanopore_pool.trimmed(4), path)
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table_9_9"])


class TestDatasetCommand:
    def test_generates_file(self, tmp_path):
        output = tmp_path / "out.txt"
        code = main(
            ["dataset", str(output), "--clusters", "10", "--seed", "3"]
        )
        assert code == 0
        pool = read_pool(output)
        assert len(pool) == 10


class TestProfileCommand:
    def test_prints_statistics(self, dataset_file, capsys):
        assert main(["profile", str(dataset_file)]) == 0
        output = capsys.readouterr().out
        assert "aggregate error rate" in output
        assert "second-order" in output


class TestGenerateCommand:
    def test_fits_and_generates(self, dataset_file, tmp_path):
        output = tmp_path / "sim.txt"
        code = main(
            [
                "generate",
                str(dataset_file),
                str(output),
                "--stage",
                "skew",
                "--coverage",
                "3",
            ]
        )
        assert code == 0
        pool = read_pool(output)
        assert pool.coverages() == [3] * len(pool)

    def test_generate_with_reference_file(self, dataset_file, tmp_path):
        references = tmp_path / "refs.txt"
        write_references(["ACGT" * 25, "TGCA" * 25], references)
        output = tmp_path / "sim.txt"
        code = main(
            [
                "generate",
                str(dataset_file),
                str(output),
                "--references",
                str(references),
                "--coverage",
                "2",
            ]
        )
        assert code == 0
        assert len(read_pool(output)) == 2


class TestEvaluateCommand:
    def test_reports_accuracy(self, dataset_file, capsys):
        code = main(
            ["evaluate", str(dataset_file), "--algorithms", "bma", "majority"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "BMA" in output
        assert "per-strand" in output

    def test_trim_option(self, dataset_file, capsys):
        assert main(["evaluate", str(dataset_file), "--trim", "2"]) == 0

    def test_unknown_algorithm_exits(self, dataset_file):
        with pytest.raises(SystemExit):
            main(["evaluate", str(dataset_file), "--algorithms", "magic"])


class TestExperimentCommand:
    def test_runs_table_1_1(self, capsys):
        assert main(["experiment", "table_1_1"]) == 0
        assert "Nanopore" in capsys.readouterr().out

    def test_runs_fig_3_2_at_small_scale(self, capsys):
        assert main(["experiment", "fig_3_2", "--clusters", "30"]) == 0
        assert "Gestalt-aligned" in capsys.readouterr().out


class TestChaosCommand:
    def test_sweeps_and_reports_recovery(self, capsys):
        code = main(
            [
                "chaos",
                "--clusters",
                "10",
                "--trials",
                "1",
                "--severities",
                "none",
                "severe",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "recovered exactly" in output
        assert "unhandled exceptions: 0" in output

    def test_unknown_severity_exits(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--severities", "apocalyptic"])


class TestErrorHandling:
    def test_missing_file_exits_nonzero_with_one_line_message(self, capsys):
        code = main(["profile", "/no/such/dataset.txt"])
        assert code != 0
        captured = capsys.readouterr()
        assert captured.err.startswith("dnasim: error:")
        assert len(captured.err.strip().splitlines()) == 1
        assert "Traceback" not in captured.err

    def test_malformed_dataset_exits_with_tagged_message(
        self, tmp_path, capsys
    ):
        path = tmp_path / "broken.txt"
        path.write_text("ACGT\nACGA\n")  # missing separator line
        code = main(["profile", str(path)])
        assert code != 0
        err = capsys.readouterr().err
        assert "dnasim: error: [data]" in err
        assert f"{path.name}:2:" in err

    def test_negative_workers_exits_with_config_message(self, capsys):
        code = main(["--workers", "-3", "experiment", "table_1_1"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("dnasim: error: [config]")
        assert "Traceback" not in err

    def test_debug_flag_reraises(self, tmp_path):
        path = tmp_path / "broken.txt"
        path.write_text("ACGT\nACGA\n")
        with pytest.raises(ValueError):
            main(["--debug", "profile", str(path)])

    def test_debug_flag_reraises_oserror(self):
        with pytest.raises(OSError):
            main(["--debug", "profile", "/no/such/dataset.txt"])


class TestSweepCommand:
    SPEC = """\
[sweep]
name = "cli-sweep"
seed = 2
clusters = 6

[axes]
coverage = [4.0]
algorithm = ["majority", "bma"]
"""

    @pytest.fixture
    def spec_path(self, tmp_path):
        path = tmp_path / "sweep.toml"
        path.write_text(self.SPEC)
        return path

    def test_dry_run_prints_matrix_without_running(
        self, spec_path, tmp_path, capsys
    ):
        out_dir = tmp_path / "out"
        code = main(
            ["sweep", "run", str(spec_path), "--out", str(out_dir), "--dry-run"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "2 cells" in output
        assert "algorithm=majority" in output
        assert not out_dir.exists()

    def test_run_status_resume_list(self, spec_path, tmp_path, capsys):
        out_dir = tmp_path / "out"
        assert main(["sweep", "run", str(spec_path), "--out", str(out_dir)]) == 0
        run_output = capsys.readouterr().out
        assert "succeeded" in run_output
        assert (out_dir / "sweep.json").exists()

        assert main(["sweep", "status", str(out_dir)]) == 0
        status_output = capsys.readouterr().out
        assert "2/2 recorded" in status_output
        assert "reusable" in status_output

        assert main(["sweep", "status", str(out_dir), "--json"]) == 0
        import json as json_module

        payload = json_module.loads(capsys.readouterr().out)
        assert payload["recorded"] == 2

        assert main(["sweep", "resume", str(out_dir)]) == 0
        assert "(reused)" in capsys.readouterr().out

        assert main(["sweep", "list", str(tmp_path)]) == 0
        assert "cli-sweep" in capsys.readouterr().out

    def test_list_without_sweeps(self, tmp_path, capsys):
        assert main(["sweep", "list", str(tmp_path)]) == 0
        assert "no sweeps" in capsys.readouterr().out

    def test_spec_typo_is_positioned_config_error(self, tmp_path, capsys):
        path = tmp_path / "typo.toml"
        path.write_text(self.SPEC.replace("coverage =", "coverges ="))
        code = main(["sweep", "run", str(path), "--out", str(tmp_path / "o")])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("dnasim: error: [config]")
        assert "typo.toml:7:" in err
        assert "did you mean 'coverage'?" in err

    def test_missing_spec_file_is_config_error(self, tmp_path, capsys):
        code = main(
            ["sweep", "run", "/no/such/spec.toml", "--out", str(tmp_path / "o")]
        )
        assert code == 2
        assert "cannot read sweep spec" in capsys.readouterr().err

    def test_status_of_non_sweep_dir_is_config_error(self, tmp_path, capsys):
        code = main(["sweep", "status", str(tmp_path)])
        assert code == 2
        assert "not a sweep directory" in capsys.readouterr().err
