"""Unit and statistical tests for repro.core.coverage."""

from __future__ import annotations

import random
import statistics

import pytest

from repro.core.coverage import (
    ConstantCoverage,
    CustomCoverage,
    ErasureCoverage,
    NegativeBinomialCoverage,
    NormalCoverage,
    PoissonCoverage,
    _poisson,
)


class TestConstant:
    def test_draws_constant(self, rng):
        assert ConstantCoverage(7).draw(5, rng) == [7] * 5

    def test_zero_clusters(self, rng):
        assert ConstantCoverage(7).draw(0, rng) == []

    def test_negative_coverage_raises(self):
        with pytest.raises(ValueError):
            ConstantCoverage(-1)

    def test_negative_clusters_raises(self, rng):
        with pytest.raises(ValueError):
            ConstantCoverage(1).draw(-1, rng)


class TestCustom:
    def test_draws_exact_list(self, rng):
        assert CustomCoverage([3, 0, 9]).draw(3, rng) == [3, 0, 9]

    def test_size_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            CustomCoverage([3, 0]).draw(3, rng)

    def test_negative_entries_raise(self):
        with pytest.raises(ValueError):
            CustomCoverage([3, -1])


class TestPoisson:
    def test_mean_close(self, rng):
        draws = PoissonCoverage(8.0).draw(4000, rng)
        assert statistics.fmean(draws) == pytest.approx(8.0, rel=0.1)

    def test_zero_mean(self, rng):
        assert PoissonCoverage(0.0).draw(10, rng) == [0] * 10

    def test_negative_mean_raises(self):
        with pytest.raises(ValueError):
            PoissonCoverage(-1.0)

    def test_large_mean_uses_normal_path(self, rng):
        draws = [_poisson(200.0, rng) for _ in range(500)]
        assert statistics.fmean(draws) == pytest.approx(200.0, rel=0.05)


class TestNegativeBinomial:
    def test_mean_close(self, rng):
        model = NegativeBinomialCoverage(mean=26.0, dispersion=4.0)
        draws = model.draw(4000, rng)
        assert statistics.fmean(draws) == pytest.approx(26.0, rel=0.1)

    def test_overdispersed_relative_to_poisson(self, rng):
        model = NegativeBinomialCoverage(mean=26.0, dispersion=4.0)
        draws = model.draw(4000, rng)
        # Variance should exceed the Poisson variance (== mean) clearly.
        assert statistics.pvariance(draws) > 2 * statistics.fmean(draws)

    def test_theoretical_variance(self):
        model = NegativeBinomialCoverage(mean=10.0, dispersion=5.0)
        assert model.variance() == pytest.approx(10.0 + 100.0 / 5.0)

    def test_invalid_dispersion_raises(self):
        with pytest.raises(ValueError):
            NegativeBinomialCoverage(10.0, 0.0)

    def test_zero_mean(self, rng):
        assert NegativeBinomialCoverage(0.0, 2.0).draw(5, rng) == [0] * 5


class TestNormal:
    def test_mean_close(self, rng):
        draws = NormalCoverage(20.0, 4.0).draw(4000, rng)
        assert statistics.fmean(draws) == pytest.approx(20.0, rel=0.1)

    def test_never_negative(self, rng):
        draws = NormalCoverage(1.0, 5.0).draw(2000, rng)
        assert min(draws) >= 0

    def test_invalid_stdev_raises(self):
        with pytest.raises(ValueError):
            NormalCoverage(5.0, -1.0)


class TestErasure:
    def test_erasure_rate_applied(self, rng):
        model = ErasureCoverage(ConstantCoverage(10), erasure_probability=0.25)
        draws = model.draw(4000, rng)
        zero_fraction = draws.count(0) / len(draws)
        assert zero_fraction == pytest.approx(0.25, abs=0.03)

    def test_zero_probability_passthrough(self, rng):
        model = ErasureCoverage(ConstantCoverage(5), erasure_probability=0.0)
        assert model.draw(10, rng) == [5] * 10

    def test_invalid_probability_raises(self):
        with pytest.raises(ValueError):
            ErasureCoverage(ConstantCoverage(5), erasure_probability=1.5)

    def test_deterministic_with_seed(self):
        model = ErasureCoverage(PoissonCoverage(5.0), 0.1)
        first = model.draw(50, random.Random(3))
        second = model.draw(50, random.Random(3))
        assert first == second
