"""Unit and property tests for repro.align.gestalt."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.align.gestalt import (
    aligned_segments,
    gestalt_error_positions,
    gestalt_score,
    matching_blocks,
)

dna = st.text(alphabet="ACGT", max_size=30)
text = st.text(alphabet="ABCDEFGHIJKLMNOPQRSTUVWXYZ", max_size=20)


class TestMatchingBlocks:
    def test_identical_strings_one_block(self):
        blocks = matching_blocks("ACGT", "ACGT")
        assert len(blocks) == 1
        assert blocks[0].size == 4

    def test_disjoint_strings_no_blocks(self):
        assert matching_blocks("AAAA", "TTTT") == []

    def test_wikimedia_example(self):
        """The paper's Fig. 3.1: WIKIM and IA match; ED/AN differ."""
        blocks = matching_blocks("WIKIMEDIA", "WIKIMANIA")
        matched = [("WIKIMEDIA"[b.first_start : b.first_start + b.size]) for b in blocks]
        assert "WIKIM" in matched
        assert "IA" in matched

    def test_blocks_sorted_and_non_overlapping(self):
        blocks = matching_blocks("ACGTACGT", "ACGGACGT")
        previous_end = 0
        for block in blocks:
            assert block.first_start >= previous_end
            previous_end = block.first_start + block.size

    @given(dna, dna)
    def test_blocks_describe_equal_substrings(self, first, second):
        for block in matching_blocks(first, second):
            assert (
                first[block.first_start : block.first_start + block.size]
                == second[block.second_start : block.second_start + block.size]
            )

    @given(dna)
    def test_self_match_is_total(self, strand):
        blocks = matching_blocks(strand, strand)
        assert sum(block.size for block in blocks) == len(strand)


class TestGestaltScore:
    def test_empty_strings_score_one(self):
        assert gestalt_score("", "") == 1.0

    def test_identical_score_one(self):
        assert gestalt_score("ACGT", "ACGT") == 1.0

    def test_disjoint_score_zero(self):
        assert gestalt_score("AAAA", "TTTT") == 0.0

    def test_wikimedia_score(self):
        # 7 matched characters of 9+9 -> 14/18.
        assert gestalt_score("WIKIMEDIA", "WIKIMANIA") == pytest.approx(14 / 18)

    @given(text, text)
    def test_score_in_unit_interval(self, first, second):
        assert 0.0 <= gestalt_score(first, second) <= 1.0

    @given(dna, dna)
    def test_deletion_decreases_score_monotonically(self, first, second):
        # Removing a character can only reduce the total match by <= 1.
        if first:
            shorter = first[1:]
            full = gestalt_score(first, first)
            partial = gestalt_score(shorter, first)
            assert partial <= full


class TestErrorPositions:
    def test_paper_worked_example(self):
        """Reference AGTC, copy ATC: gestalt-aligned error only at position
        1, the deleted G (Section 3.2)."""
        assert gestalt_error_positions("AGTC", "ATC") == [1]

    def test_identical_no_errors(self):
        assert gestalt_error_positions("ACGT", "ACGT") == []

    def test_fully_different(self):
        assert gestalt_error_positions("AAA", "TTT") == [0, 1, 2]

    @given(dna, dna)
    def test_positions_within_reference(self, reference, other):
        positions = gestalt_error_positions(reference, other)
        assert all(0 <= position < len(reference) for position in positions)

    @given(dna, dna)
    def test_error_count_complements_matches(self, reference, other):
        matched = sum(b.size for b in matching_blocks(reference, other))
        errors = len(gestalt_error_positions(reference, other))
        assert matched + errors == len(reference)


class TestAlignedSegments:
    def test_segments_reassemble_inputs(self):
        segments = aligned_segments("WIKIMEDIA", "WIKIMANIA")
        assert "".join(part for _tag, part, _o in segments) == "WIKIMEDIA"
        assert "".join(part for _tag, _r, part in segments) == "WIKIMANIA"

    def test_match_segments_are_equal(self):
        for tag, ref_part, other_part in aligned_segments("ACGTAC", "ACTTAC"):
            if tag == "match":
                assert ref_part == other_part

    @given(dna, dna)
    def test_segments_always_reassemble(self, reference, other):
        segments = aligned_segments(reference, other)
        assert "".join(part for _t, part, _o in segments) == reference
        assert "".join(part for _t, _r, part in segments) == other
