"""Unit tests for the metrics package (accuracy, curves, distances)."""

from __future__ import annotations

import pytest

from repro.core.strand import Cluster, StrandPool
from repro.metrics.accuracy import (
    evaluate_reconstruction,
    per_character_accuracy,
    per_strand_accuracy,
)
from repro.metrics.curves import (
    curve_summary,
    gestalt_error_curve,
    hamming_error_curve,
    post_reconstruction_curves,
    pre_reconstruction_curves,
)
from repro.metrics.distance import (
    chi_square_distance,
    mean_gestalt_score,
    mean_normalized_edit_distance,
    mean_normalized_hamming_distance,
    positional_profile_distance,
)
from repro.reconstruct.majority import PositionalMajority


class TestAccuracy:
    def test_per_strand_counts_exact_matches(self):
        assert per_strand_accuracy(["ACGT", "TTTT"], ["ACGT", "TTTA"]) == 50.0

    def test_per_strand_empty(self):
        assert per_strand_accuracy([], []) == 0.0

    def test_per_strand_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            per_strand_accuracy(["ACGT"], [])

    def test_per_character_positional(self):
        # Estimate shifted by one: only some positions line up.
        assert per_character_accuracy(["AAAA"], ["AAAT"]) == 75.0

    def test_per_character_short_estimate(self):
        assert per_character_accuracy(["AAAA"], ["AA"]) == 50.0

    def test_per_character_long_estimate_ignores_tail(self):
        assert per_character_accuracy(["AAAA"], ["AAAATTTT"]) == 100.0

    def test_evaluate_reconstruction_report(self, small_pool):
        report = evaluate_reconstruction(small_pool, PositionalMajority(), 10)
        assert report.n_clusters == 3
        assert 0.0 <= report.per_strand <= 100.0
        assert "per-strand" in str(report)

    def test_evaluate_infers_strand_length(self, small_pool):
        report = evaluate_reconstruction(small_pool, PositionalMajority())
        assert report.n_clusters == 3

    def test_evaluate_empty_pool_raises(self):
        with pytest.raises(ValueError):
            evaluate_reconstruction(StrandPool(), PositionalMajority())

    def test_erasures_count_as_failures(self):
        pool = StrandPool([Cluster("ACGT")])
        report = evaluate_reconstruction(pool, PositionalMajority(), 4)
        assert report.per_strand == 0.0
        assert report.per_character == 0.0


class TestCurves:
    def test_hamming_curve_accumulates(self):
        curve = hamming_error_curve(["ACGT", "ACGT"], ["ACGA", "ACTT"])
        assert curve[3] == 1
        assert curve[2] == 1

    def test_hamming_curve_extends_for_long_copies(self):
        curve = hamming_error_curve(["AC"], ["ACGT"])
        assert len(curve) == 4
        assert curve[2] == 1 and curve[3] == 1

    def test_gestalt_curve_localises_sources(self):
        curve = gestalt_error_curve(["AGTC"], ["ATC"])
        assert curve == [0, 1, 0, 0]

    def test_curve_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            hamming_error_curve(["ACGT"], [])

    def test_pre_reconstruction_curves(self, small_pool):
        hamming, gestalt = pre_reconstruction_curves(small_pool)
        assert sum(hamming) >= sum(gestalt)

    def test_pre_reconstruction_copy_cap(self, small_pool):
        full = pre_reconstruction_curves(small_pool)
        capped = pre_reconstruction_curves(small_pool, max_copies_per_cluster=1)
        assert sum(capped[0]) <= sum(full[0])

    def test_post_reconstruction_curves(self, small_pool):
        estimates = PositionalMajority().reconstruct_pool(small_pool, 10)
        hamming, gestalt = post_reconstruction_curves(small_pool, estimates)
        assert len(hamming) >= 10

    def test_curve_summary_bins(self):
        summary = curve_summary([1] * 10, bins=5)
        assert summary == [2, 2, 2, 2, 2]

    def test_curve_summary_empty(self):
        assert curve_summary([], bins=3) == [0, 0, 0]

    def test_curve_summary_short_curve_fills_leading_bins(self):
        """Regression: a curve shorter than the bin count used to scatter
        positions into non-adjacent bins (a length-2 curve with 11 bins
        filled bins 0 and 5); short curves now fill the leading bins
        contiguously and pad the rest with zeros."""
        assert curve_summary([3, 9], bins=11) == [3, 9] + [0] * 9

    def test_curve_summary_short_curves_preserve_mass_and_order(self):
        for length in range(1, 11):
            curve = list(range(1, length + 1))
            summary = curve_summary(curve, bins=11)
            assert summary[:length] == curve
            assert summary[length:] == [0] * (11 - length)
            assert sum(summary) == sum(curve)

    def test_curve_summary_equal_length_is_identity(self):
        curve = [5, 0, 2, 7]
        assert curve_summary(curve, bins=4) == curve

    def test_curve_summary_invalid_bins(self):
        with pytest.raises(ValueError):
            curve_summary([1], bins=0)


class TestDistances:
    def test_chi_square_identical_is_zero(self):
        assert chi_square_distance([1, 2, 3], [2, 4, 6]) == pytest.approx(0.0)

    def test_chi_square_disjoint_is_one(self):
        assert chi_square_distance([1, 0], [0, 1]) == pytest.approx(1.0)

    def test_chi_square_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            chi_square_distance([1], [1, 2])

    def test_chi_square_zero_mass_raises(self):
        with pytest.raises(ValueError):
            chi_square_distance([0, 0], [1, 2])

    def test_mean_edit_distance_zero_for_clean_pool(self):
        pool = StrandPool([Cluster("ACGT", ["ACGT", "ACGT"])])
        assert mean_normalized_edit_distance(pool) == 0.0

    def test_mean_hamming_at_least_edit(self, small_pool):
        assert mean_normalized_hamming_distance(
            small_pool
        ) >= mean_normalized_edit_distance(small_pool)

    def test_mean_gestalt_score_clean_pool(self):
        pool = StrandPool([Cluster("ACGT", ["ACGT"])])
        assert mean_gestalt_score(pool) == 1.0

    def test_mean_metrics_empty_pool(self):
        pool = StrandPool()
        assert mean_normalized_edit_distance(pool) == 0.0
        assert mean_gestalt_score(pool) == 1.0

    def test_positional_profile_distance_pads(self):
        assert positional_profile_distance([1, 1], [1, 1, 0]) == pytest.approx(0.0)
