"""Tests for profile comparison and the fountain archive."""

from __future__ import annotations

import random

import pytest

from repro.analysis.compare import compare_pools, compare_statistics
from repro.analysis.error_stats import ErrorStatistics
from repro.core.coverage import ConstantCoverage
from repro.core.errors import ErrorModel
from repro.core.profile import ErrorProfile, SimulatorStage
from repro.core.simulator import Simulator
from repro.pipeline.fountain_archive import (
    FountainArchive,
    FountainArchiveError,
)
from repro.pipeline.encoding import RotationCodec
from repro.reconstruct.iterative import IterativeReconstruction


class TestProfileComparison:
    def test_pool_compared_to_itself_is_zero(self, nanopore_pool):
        comparison = compare_pools(nanopore_pool, nanopore_pool)
        assert comparison.aggregate_rate_delta == 0.0
        assert comparison.positional_distance == pytest.approx(0.0)
        assert comparison.second_order_overlap == 1.0

    def test_fitted_simulator_closer_than_naive(self, nanopore_pool):
        """The paper's claim, numerically: the full model's profile is
        closer to the data on the spatial axis than the naive model's."""
        profile = ErrorProfile.from_pool(nanopore_pool, max_copies_per_cluster=3)
        references = nanopore_pool.references
        naive_pool = Simulator(
            profile.naive_model(), ConstantCoverage(6), seed=3
        ).simulate(references)
        full_pool = Simulator(
            profile.generalized_model(), ConstantCoverage(6), seed=3
        ).simulate(references)
        naive_comparison = compare_pools(naive_pool, nanopore_pool)
        full_comparison = compare_pools(full_pool, nanopore_pool)
        assert (
            full_comparison.positional_distance
            < naive_comparison.positional_distance
        )
        assert (
            full_comparison.substitution_matrix_distance
            < naive_comparison.substitution_matrix_distance
        )

    def test_summary_mentions_all_metrics(self, nanopore_pool):
        comparison = compare_pools(nanopore_pool, nanopore_pool)
        summary = comparison.summary()
        for keyword in ("aggregate", "substitution-matrix", "positional",
                        "long-deletion", "second-order"):
            assert keyword in summary

    def test_empty_statistics_compare(self):
        comparison = compare_statistics(ErrorStatistics(), ErrorStatistics())
        assert comparison.aggregate_rate_delta == 0.0
        assert comparison.second_order_overlap == 1.0


class TestFountainArchive:
    @pytest.fixture
    def payload(self) -> bytes:
        return bytes(random.Random(21).randrange(256) for _ in range(600))

    def test_noiseless_roundtrip(self, payload):
        archive = FountainArchive(seed=1)
        archive.write("doc", payload)
        assert archive.read("doc") == payload

    def test_duplicate_key_rejected(self, payload):
        archive = FountainArchive(seed=1)
        archive.write("doc", payload)
        with pytest.raises(ValueError):
            archive.write("doc", payload)

    def test_empty_data_rejected(self):
        with pytest.raises(ValueError):
            FountainArchive(seed=1).write("doc", b"")

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError):
            FountainArchive(seed=1).read("missing")

    def test_survives_strand_loss(self, payload):
        archive = FountainArchive(seed=2, overhead=2.0)
        archive.write("doc", payload)
        assert archive.read("doc", strand_loss_rate=0.25) == payload

    def test_catastrophic_loss_raises(self, payload):
        archive = FountainArchive(seed=3, overhead=0.3)
        archive.write("doc", payload)
        with pytest.raises(FountainArchiveError):
            archive.read("doc", strand_loss_rate=0.95)

    def test_roundtrip_through_noisy_channel(self, payload):
        archive = FountainArchive(seed=4, overhead=2.0)
        archive.write("doc", payload)
        model = ErrorModel.naive(0.004, 0.006, 0.012)
        recovered = archive.read(
            "doc",
            channel_model=model,
            coverage=8,
            reconstructor=IterativeReconstruction(),
        )
        assert recovered == payload

    def test_rotation_codec_variant(self, payload):
        archive = FountainArchive(codec=RotationCodec(), seed=5)
        archive.write("doc", payload[:200])
        assert archive.read("doc") == payload[:200]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FountainArchive(chunk_size=0)
        with pytest.raises(ValueError):
            FountainArchive(overhead=-0.1)
        archive = FountainArchive(seed=6)
        archive.write("doc", b"abc")
        with pytest.raises(ValueError):
            archive.read("doc", strand_loss_rate=1.5)

    def test_overhead_controls_strand_count(self, payload):
        lean = FountainArchive(seed=7, overhead=0.2).write("a", payload)
        rich = FountainArchive(seed=7, overhead=1.0).write("a", payload)
        assert len(rich.strands) > len(lean.strands)
