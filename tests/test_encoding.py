"""Unit and property tests for the bytes <-> DNA codecs."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.alphabet import gc_content, longest_homopolymer
from repro.pipeline.encoding import (
    Basic2BitCodec,
    CodecError,
    GCBalancedCodec,
    RotationCodec,
    get_codec,
    CODECS,
)

payloads = st.binary(max_size=64)
ALL_CODECS = list(CODECS.values())


@pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda c: c.name)
class TestRoundtrips:
    @given(payload=payloads)
    def test_roundtrip(self, codec, payload):
        assert codec.decode(codec.encode(payload)) == payload

    def test_empty_payload(self, codec):
        assert codec.decode(codec.encode(b"")) == b""

    def test_bases_per_byte_positive(self, codec):
        assert codec.bases_per_byte() >= 4

    @given(payload=payloads)
    def test_output_is_dna(self, codec, payload):
        assert set(codec.encode(payload)) <= set("ACGT")


class TestBasic2Bit:
    def test_known_encoding(self):
        # 0b00011011 -> A C G T
        assert Basic2BitCodec().encode(bytes([0b00011011])) == "ACGT"

    def test_four_bases_per_byte(self):
        assert Basic2BitCodec().bases_per_byte() == 4

    def test_decode_bad_length_raises(self):
        with pytest.raises(CodecError):
            Basic2BitCodec().decode("ACG")


class TestRotation:
    @given(payload=payloads)
    def test_never_produces_homopolymers(self, payload):
        strand = RotationCodec().encode(payload)
        assert longest_homopolymer(strand) <= 1

    def test_decode_rejects_homopolymer(self):
        with pytest.raises(CodecError, match="homopolymer"):
            RotationCodec().decode("CCGTAC")

    def test_decode_bad_length_raises(self):
        with pytest.raises(CodecError):
            RotationCodec().decode("CG")

    def test_six_bases_per_byte(self):
        assert RotationCodec().bases_per_byte() == 6


class TestGCBalanced:
    def test_balances_pathological_payload(self):
        # 0xAA = 0b10101010 -> "GGGG..." under the basic codec: all-GC.
        codec = GCBalancedCodec()
        strand = codec.encode(bytes([0xAA] * 16))
        assert 0.25 <= gc_content(strand) <= 0.75

    def test_flag_base_overhead(self):
        codec = GCBalancedCodec()
        strand = codec.encode(bytes(20))
        # 20 zero bytes -> 80 payload bases -> 4 blocks -> 4 flag bases.
        assert len(strand) == 84

    def test_decode_rejects_bad_flag(self):
        codec = GCBalancedCodec()
        strand = codec.encode(bytes(5))
        with pytest.raises(CodecError, match="flag"):
            codec.decode("G" + strand[1:])

    def test_decode_rejects_bare_flag(self):
        with pytest.raises(CodecError):
            GCBalancedCodec().decode("A")


class TestRegistry:
    def test_get_codec_by_name(self):
        assert get_codec("rotation").name == "rotation"

    def test_unknown_codec_lists_options(self):
        with pytest.raises(KeyError, match="basic"):
            get_codec("morse")
