"""Shared fixtures for the test suite.

Fixtures are deliberately small (tens of clusters, short strands) so the
whole suite stays fast; statistical assertions use wide tolerances and
fixed seeds.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.core.coverage import ConstantCoverage
from repro.core.errors import ErrorModel
from repro.core.simulator import Simulator
from repro.core.strand import Cluster, StrandPool
from repro.data.nanopore import make_nanopore_dataset


@pytest.fixture(scope="session", autouse=True)
def isolated_context_cache(tmp_path_factory):
    """Point the persistent context cache at a per-session directory.

    Keeps the tier-1 suite hermetic: a stale ``~/.cache/dnasim`` entry
    from an older checkout must never feed cached artifacts into these
    tests.  Individual tests monkeypatch ``REPRO_CACHE_DIR`` further
    when they need a private directory.
    """
    if "REPRO_CACHE_DIR" not in os.environ:
        os.environ["REPRO_CACHE_DIR"] = str(
            tmp_path_factory.mktemp("dnasim-cache")
        )
    yield


@pytest.fixture
def rng() -> random.Random:
    """A deterministic random stream, fresh per test."""
    return random.Random(1234)


@pytest.fixture
def small_cluster() -> Cluster:
    """A hand-built cluster with known noisy copies."""
    return Cluster(
        "ACGTACGTAC",
        ["ACGTACGTAC", "ACGTACGAC", "ACGTTACGTAC", "ACGAACGTAC"],
    )


@pytest.fixture
def small_pool(small_cluster: Cluster) -> StrandPool:
    """A three-cluster pool with one erasure."""
    return StrandPool(
        [
            small_cluster,
            Cluster("TTTTGGGGCC", ["TTTTGGGGCC", "TTTGGGGCC"]),
            Cluster("GACTGACTGA"),  # erasure: no copies
        ]
    )


@pytest.fixture(scope="session")
def uniform_pool() -> StrandPool:
    """A 60-cluster pool from a uniform 6% channel at coverage 5."""
    simulator = Simulator(
        ErrorModel.uniform(0.06), ConstantCoverage(5), seed=99
    )
    return simulator.simulate_random(60, 110)


@pytest.fixture(scope="session")
def nanopore_pool() -> StrandPool:
    """A small synthetic Nanopore dataset (session-cached: generation and
    profiling of the same pool are reused across test modules)."""
    return make_nanopore_dataset(n_clusters=80, seed=7)
