"""Equivalence and dispatch tests for the alignment kernel layer.

The contract under test: **every** backend of :mod:`repro.align.kernels`
returns bit-identical results to the pure-Python reference DPs — exact
distances, banded lower bounds, gestalt matching blocks, and clustering
assignments — over a seeded randomized corpus that covers empty strings,
equal strings, band 0, IDS-noised length-110 pairs, and 64-bit
word-boundary lengths.
"""

from __future__ import annotations

import random

import pytest

from repro.align import kernels
from repro.align.edit_distance import edit_distance, edit_distance_banded
from repro.align.gestalt import clear_block_cache, matching_blocks
from repro.align.kernels import (
    CompiledPattern,
    edit_distances_one_to_many,
    set_align_backend,
)
from repro.align.operations import OpKind, apply_operations, edit_operations
from repro.cli import main
from repro.cluster.greedy import GreedyClusterer
from repro.cluster.qgram_index import QGramIndex
from repro.exceptions import ConfigError

#: The concrete backends (auto is an alias resolving to bitparallel for
#: pairwise calls and batched for large one-vs-many batches).  Pairwise
#: calls under ``batched`` fall through to the scalar bit-parallel
#: kernel, so including it here exercises that fall-through too.
CONCRETE_BACKENDS = ("python", "numpy", "bitparallel", "batched")

BANDS = (0, 1, 3, 25)


@pytest.fixture(autouse=True)
def _restore_backend():
    """Every test leaves the process on the default (auto) backend."""
    yield
    set_align_backend(None)


def _strand(rng: random.Random, length: int) -> str:
    return "".join(rng.choice("ACGT") for _ in range(length))


def _ids_noised(rng: random.Random, reference: str, rate: float = 0.06) -> str:
    """Insertion/deletion/substitution noise at the paper's error scale."""
    out: list[str] = []
    for base in reference:
        draw = rng.random()
        if draw < rate / 3:
            continue  # deletion
        if draw < 2 * rate / 3:
            out.append(rng.choice("ACGT"))  # substitution
            continue
        out.append(base)
        if draw < rate:
            out.append(rng.choice("ACGT"))  # insertion
    return "".join(out)


def _pair_corpus() -> list[tuple[str, str]]:
    """~500 seeded pairs spanning the tricky regions of the input space."""
    rng = random.Random(20260805)
    pairs: list[tuple[str, str]] = [
        ("", ""),
        ("", "ACGT"),
        ("ACGT", ""),
        ("A", "A"),
        ("A", "C"),
        ("AC", "CA"),
    ]
    # Equal strings at assorted lengths (distance 0, band 0 exercised).
    for length in (1, 7, 63, 64, 65, 110, 200):
        strand = _strand(rng, length)
        pairs.append((strand, strand))
    # 64-bit word-boundary lengths: the bit-parallel kernel must be
    # seamless across the one-word/multi-word transition.
    for length in (63, 64, 65, 127, 128, 129):
        for _ in range(8):
            other = rng.randint(max(0, length - 6), length + 6)
            pairs.append((_strand(rng, length), _strand(rng, other)))
    # Assorted short random pairs (including many length-0/1 edge cases).
    for _ in range(300):
        pairs.append(
            (
                _strand(rng, rng.randint(0, 40)),
                _strand(rng, rng.randint(0, 40)),
            )
        )
    # The paper's shape: length-110 references with IDS noise.
    for _ in range(120):
        reference = _strand(rng, 110)
        pairs.append((reference, _ids_noised(rng, reference)))
    # A few long pairs (multi-word patterns, large matrices).
    for _ in range(3):
        reference = _strand(rng, 1000)
        pairs.append((reference, _ids_noised(rng, reference)))
    return pairs


PAIRS = _pair_corpus()


@pytest.fixture(scope="module")
def reference_distances() -> list[int]:
    """Ground-truth distances from the seed's pure-Python DP."""
    return [kernels._python_distance(first, second) for first, second in PAIRS]


class TestDistanceEquivalence:
    def test_corpus_is_large_and_varied(self):
        assert len(PAIRS) >= 450
        assert any(not first for first, _ in PAIRS)
        assert any(first == second and first for first, second in PAIRS)
        assert any(len(first) > 64 for first, _ in PAIRS)

    @pytest.mark.parametrize("backend", CONCRETE_BACKENDS + ("auto",))
    def test_edit_distance_matches_reference(self, backend, reference_distances):
        set_align_backend(backend)
        for (first, second), expected in zip(PAIRS, reference_distances):
            assert edit_distance(first, second) == expected, (first, second)

    @pytest.mark.parametrize("backend", CONCRETE_BACKENDS)
    def test_banded_matches_reference_bound(self, backend, reference_distances):
        """Banded result is exactly min(true distance, band + 1): the true
        distance when within the band, the lower bound band + 1 the moment
        the band is provably exceeded."""
        set_align_backend(backend)
        for (first, second), exact in zip(PAIRS, reference_distances):
            for band in BANDS:
                assert edit_distance_banded(first, second, band) == min(
                    exact, band + 1
                ), (first, second, band)

    @pytest.mark.parametrize("backend", CONCRETE_BACKENDS)
    def test_one_to_many_matches_pairwise(self, backend):
        rng = random.Random(7)
        reference = _strand(rng, 110)
        reads = [_ids_noised(rng, reference) for _ in range(15)]
        reads += ["", reference, _strand(rng, 40)]
        set_align_backend(backend)
        assert edit_distances_one_to_many(reference, reads) == [
            edit_distance(reference, read) for read in reads
        ]
        assert edit_distances_one_to_many(reference, reads, band=10) == [
            edit_distance_banded(reference, read, 10) for read in reads
        ]

    @pytest.mark.parametrize("backend", CONCRETE_BACKENDS)
    def test_compiled_pattern_matches_functions(self, backend):
        set_align_backend(backend)
        rng = random.Random(11)
        pattern = CompiledPattern(_strand(rng, 80))
        for _ in range(25):
            other = _strand(rng, rng.randint(0, 120))
            assert pattern.distance(other) == edit_distance(pattern.text, other)
            for band in (0, 5, 25):
                assert pattern.banded_distance(other, band) == (
                    edit_distance_banded(pattern.text, other, band)
                )


class TestGestaltEquivalence:
    @pytest.mark.parametrize("backend", ("numpy", "bitparallel", "auto"))
    def test_matching_blocks_match_python_reference(self, backend):
        set_align_backend("python")
        expected = [matching_blocks(first, second) for first, second in PAIRS[:200]]
        set_align_backend(backend)
        for (first, second), blocks in zip(PAIRS[:200], expected):
            assert matching_blocks(first, second) == blocks, (first, second)

    def test_long_pair_blocks_match(self):
        first, second = PAIRS[-1]
        set_align_backend("python")
        expected = matching_blocks(first, second)
        set_align_backend("numpy")
        assert matching_blocks(first, second) == expected


class TestClusteringIdentity:
    @pytest.fixture(scope="class")
    def reads(self) -> list[str]:
        rng = random.Random(5)
        references = [_strand(rng, 110) for _ in range(25)]
        reads = [
            _ids_noised(rng, reference)
            for reference in references
            for _ in range(6)
        ]
        rng.shuffle(reads)
        return reads

    def test_assignments_identical_across_backends(self, reads):
        results = {}
        for backend in CONCRETE_BACKENDS:
            set_align_backend(backend)
            results[backend] = GreedyClusterer().cluster(reads)
        baseline = results["python"]
        for backend, result in results.items():
            assert result.assignments == baseline.assignments, backend
            assert result.representatives == baseline.representatives, backend
            assert result.comparisons == baseline.comparisons, backend

    def test_qgram_signatures_identical_across_backends(self):
        rng = random.Random(13)
        index = QGramIndex(q=8, bands=8)
        for sequence in ["", "ACG", _strand(rng, 7), _strand(rng, 8), _strand(rng, 110)]:
            set_align_backend("python")
            expected = index.signature(sequence)
            for backend in ("numpy", "bitparallel", "batched", "auto"):
                set_align_backend(backend)
                assert index.signature(sequence) == expected, (sequence, backend)

    def test_pool_signatures_match_per_read(self):
        """The pool-wide batched FNV-1a sweep is bit-identical to the
        per-read signature path, across backends and edge lengths."""
        rng = random.Random(29)
        pool = [
            "",
            "A",
            "ACGTN",
            _strand(rng, 7),
            _strand(rng, 8),
            _strand(rng, 9),
            "acgtacgtac",
            "Aé世\U0001F600BACGT",
            _strand(rng, 110),
            _strand(rng, 111),
            _strand(rng, 500),
        ] + [_strand(rng, rng.randint(0, 120)) for _ in range(60)]
        index = QGramIndex(q=8, bands=8)
        set_align_backend("python")
        expected = [index.signature(sequence) for sequence in pool]
        for backend in ("python", "numpy", "bitparallel", "batched", "auto"):
            set_align_backend(backend)
            assert index.signatures(pool) == expected, backend


class TestBatchedBackendEquivalence:
    """Fuzz the batched uint64 sweep against the reference DP (ISSUE 7).

    Lengths straddle the word boundary and the paper's strand length;
    alphabets include N, lowercase, and astral-plane unicode; bands
    include the degenerate 0 and band >= max(len) cases.  Everything is
    checked bit-identical to the pure-Python DP.
    """

    LENGTHS = (0, 1, 109, 110, 111, 500)
    ALPHABETS = ("ACGT", "ACGTN", "acgt", "Aé世\U0001F600T")

    @staticmethod
    def _noised(rng: random.Random, reference: str, alphabet: str) -> str:
        out = list(reference)
        for _ in range(rng.randint(0, 12)):
            if not out:
                break
            draw, position = rng.random(), rng.randrange(len(out))
            if draw < 0.34:
                out[position] = rng.choice(alphabet)
            elif draw < 0.67:
                del out[position]
            else:
                out.insert(position, rng.choice(alphabet))
        return "".join(out)

    def _batch(
        self, rng: random.Random, reference: str, alphabet: str
    ) -> list[str]:
        reads = ["", reference]
        reads += [self._noised(rng, reference, alphabet) for _ in range(10)]
        reads += [
            "".join(rng.choice(alphabet) for _ in range(rng.randint(0, 130)))
            for _ in range(4)
        ]
        return reads

    def test_batched_matches_reference_dp(self):
        rng = random.Random(20260808)
        set_align_backend("batched")
        for length in self.LENGTHS:
            for alphabet in self.ALPHABETS:
                reference = "".join(
                    rng.choice(alphabet) for _ in range(length)
                )
                reads = self._batch(rng, reference, alphabet)
                expected = [
                    kernels._python_distance(reference, read) for read in reads
                ]
                pattern = CompiledPattern(reference)
                assert pattern.distances(reads) == expected, (length, alphabet)
                for band in (0, 1, 3, 25, 1000):
                    assert pattern.banded_distances(reads, band) == [
                        min(distance, band + 1) for distance in expected
                    ], (length, alphabet, band)

    def test_one_to_many_empty_batch(self):
        set_align_backend("batched")
        assert edit_distances_one_to_many("ACGT", []) == []
        assert edit_distances_one_to_many("ACGT", [], band=3) == []

    def test_auto_threshold_dispatch(self):
        """``auto`` sweeps batches of >= _BATCH_MIN_READS reads; the
        explicit ``batched`` backend sweeps any non-empty batch."""
        assert kernels._batch_selected("batched", 1)
        assert kernels._batch_selected("auto", kernels._BATCH_MIN_READS)
        assert not kernels._batch_selected("auto", kernels._BATCH_MIN_READS - 1)
        assert not kernels._batch_selected("bitparallel", 10_000)

    def test_auto_large_batch_matches_reference(self):
        rng = random.Random(31)
        reference = _strand(rng, 110)
        reads = [_ids_noised(rng, reference) for _ in range(kernels._BATCH_MIN_READS + 5)]
        expected = [kernels._python_distance(reference, read) for read in reads]
        set_align_backend("auto")
        assert edit_distances_one_to_many(reference, reads) == expected
        assert edit_distances_one_to_many(reference, reads, band=25) == [
            min(distance, 26) for distance in expected
        ]

    def test_greedy_identity_under_env_backend(self, monkeypatch):
        rng = random.Random(37)
        references = [_strand(rng, 110) for _ in range(12)]
        reads = [
            _ids_noised(rng, reference)
            for reference in references
            for _ in range(5)
        ]
        rng.shuffle(reads)
        set_align_backend("python")
        baseline = GreedyClusterer().cluster(reads)
        monkeypatch.setenv(kernels.ALIGN_BACKEND_ENV, "batched")
        set_align_backend(None)
        assert kernels.align_backend() == "batched"
        result = GreedyClusterer().cluster(reads)
        assert result.assignments == baseline.assignments
        assert result.representatives == baseline.representatives
        assert result.comparisons == baseline.comparisons


class TestFastExits:
    def test_empty_side_returns_length_difference(self):
        assert edit_distance("", "ACGTACGT") == 8
        assert edit_distance("ACGT", "") == 4
        assert edit_distance("", "") == 0

    def test_equal_strings_skip_kernel(self, monkeypatch):
        def explode(*_args, **_kwargs):  # pragma: no cover - fails the test
            raise AssertionError("kernel must not run on a fast-exit pair")

        monkeypatch.setattr(kernels, "edit_distance_kernel", explode)
        assert edit_distance("ACGT", "ACGT") == 0
        assert edit_distance("", "ACGT") == 4

    def test_operations_equal_strings_all_equal_ops(self):
        rng = random.Random(0)
        for use_rng in (None, rng):
            operations = edit_operations("ACGT", "ACGT", use_rng)
            assert [op.kind for op in operations] == [OpKind.EQUAL] * 4
            assert apply_operations("ACGT", operations) == "ACGT"

    def test_operations_empty_copy_all_deletions(self):
        operations = edit_operations("ACG", "")
        assert [op.kind for op in operations] == [OpKind.DELETION] * 3
        assert apply_operations("ACG", operations) == ""

    def test_operations_empty_reference_all_insertions(self):
        operations = edit_operations("", "ACG")
        assert [op.kind for op in operations] == [OpKind.INSERTION] * 3
        assert apply_operations("", operations) == "ACG"


class TestMeanReconstructionDistance:
    def test_mean_over_pairs(self):
        from repro.metrics import mean_reconstruction_edit_distance

        assert mean_reconstruction_edit_distance(
            ["ACGT", "AAAA"], ["ACGT", "AATA"]
        ) == pytest.approx(0.5)

    def test_empty_input_is_zero(self):
        from repro.metrics import mean_reconstruction_edit_distance

        assert mean_reconstruction_edit_distance([], []) == 0.0

    def test_length_mismatch_raises(self):
        from repro.metrics import mean_reconstruction_edit_distance

        with pytest.raises(ValueError, match="1 references but 2"):
            mean_reconstruction_edit_distance(["A"], ["A", "C"])

    @pytest.mark.parametrize("backend", CONCRETE_BACKENDS)
    def test_identical_across_backends(self, backend):
        from repro.metrics import mean_reconstruction_edit_distance

        rng = random.Random(17)
        references = [_strand(rng, 110) for _ in range(10)]
        estimates = [_ids_noised(rng, reference) for reference in references]
        set_align_backend("python")
        expected = mean_reconstruction_edit_distance(references, estimates)
        set_align_backend(backend)
        assert mean_reconstruction_edit_distance(references, estimates) == expected


class TestBlockMemoisation:
    def test_same_pair_computes_blocks_once(self, monkeypatch):
        clear_block_cache()
        calls = {"n": 0}
        real = kernels.longest_common_substring

        def counting(*args):
            calls["n"] += 1
            return real(*args)

        monkeypatch.setattr(kernels, "longest_common_substring", counting)
        first = matching_blocks("WIKIMEDIA", "WIKIMANIA")
        after_first = calls["n"]
        assert after_first > 0
        second = matching_blocks("WIKIMEDIA", "WIKIMANIA")
        assert calls["n"] == after_first  # served from the LRU
        assert second == first
        assert second is not first  # fresh list, safe to mutate

    def test_backend_switch_does_not_serve_stale_entries(self, monkeypatch):
        clear_block_cache()
        set_align_backend("python")
        matching_blocks("WIKIMEDIA", "WIKIMANIA")
        calls = {"n": 0}
        real = kernels.longest_common_substring

        def counting(*args):
            calls["n"] += 1
            return real(*args)

        monkeypatch.setattr(kernels, "longest_common_substring", counting)
        set_align_backend("numpy")
        matching_blocks("WIKIMEDIA", "WIKIMANIA")
        assert calls["n"] > 0  # recomputed under the new backend key

    def test_clear_block_cache_forces_recompute(self, monkeypatch):
        matching_blocks("ACGTACGT", "ACGGACGT")
        clear_block_cache()
        calls = {"n": 0}
        real = kernels.longest_common_substring

        def counting(*args):
            calls["n"] += 1
            return real(*args)

        monkeypatch.setattr(kernels, "longest_common_substring", counting)
        matching_blocks("ACGTACGT", "ACGGACGT")
        assert calls["n"] > 0


class TestBackendConfiguration:
    def test_unknown_backend_raises_config_error(self):
        with pytest.raises(ConfigError, match="unknown align backend"):
            set_align_backend("fortran")

    def test_invalid_env_var_raises_config_error(self, monkeypatch):
        monkeypatch.setenv(kernels.ALIGN_BACKEND_ENV, "not-a-backend")
        set_align_backend(None)
        with pytest.raises(ConfigError, match="not-a-backend"):
            edit_distance("ACGT", "ACGA")

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(kernels.ALIGN_BACKEND_ENV, "python")
        set_align_backend(None)
        assert kernels.align_backend() == "python"

    def test_override_beats_env_var(self, monkeypatch):
        monkeypatch.setenv(kernels.ALIGN_BACKEND_ENV, "python")
        set_align_backend("numpy")
        assert kernels.align_backend() == "numpy"

    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv(kernels.ALIGN_BACKEND_ENV, raising=False)
        set_align_backend(None)
        assert kernels.align_backend() == "auto"
        assert kernels.lcs_backend() == "numpy"

    def test_cli_rejects_unknown_backend_with_one_line_error(self, capsys):
        code = main(["--align-backend", "bogus", "experiment", "table_1_1"])
        assert code == 2
        error_output = capsys.readouterr().err.strip().splitlines()
        assert len(error_output) == 1
        assert error_output[0].startswith("dnasim: error: [config]")
        assert "bogus" in error_output[0]

    def test_cli_accepts_valid_backend(self, capsys):
        assert main(["--align-backend", "bitparallel", "experiment", "table_1_1"]) == 0
        assert "Nanopore" in capsys.readouterr().out
