"""Property and conformance tests for the scenario DSL and orchestrator.

Three layers, matching the package:

* **Spec properties** — expansion is a pure function with two verified
  inverses (``expand``/``from_cells`` and ``to_toml``/``parse``), the
  shuffled execution order is seed-deterministic, and every malformed
  spec dies loudly with a ``file:line``-positioned :class:`ConfigError`
  carrying a did-you-mean hint (a typo'd axis must never silently
  shrink the matrix).
* **Orchestrator conformance** — every artifact a sweep writes passes
  ``assert_stamped``; a perturbed spec is a loud mismatch against an
  existing sweep directory; a tampered cell record is detected and
  re-derived, never silently reused.
* **Backend pinning** — cells carry their backends in the durable spec,
  so a poisoned ``REPRO_*_BACKEND`` environment cannot change what a
  pinned cell computes, and all align backends produce bit-identical
  sweep results.
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigError
from repro.observability.bench import assert_stamped
from repro.scenarios import (
    AXES,
    AXIS_DEFAULTS,
    ORDERS,
    ScenarioCell,
    SweepSpec,
    SweepStore,
    list_sweeps,
    parse_sweep_spec,
    read_manifest,
    resume_sweep,
    run_sweep,
    sweep_status,
)

# ----------------------------------------------------------------- #
# Fixtures
# ----------------------------------------------------------------- #

WIDE_TOML = """\
[sweep]
name = "wide"
seed = 7
clusters = 12
order = "lexicographic"

[axes]
channel = ["paper", "hot"]
coverage = [4.0, 6.0]
algorithm = ["majority", "bma"]
severity = ["none", "mild"]
shards = [1, 2]

[channels.hot]
substitution_rate = 0.04
deletion_rate = 0.02
"""


def wide_spec() -> SweepSpec:
    return parse_sweep_spec(WIDE_TOML, source="wide.toml")


def tiny_spec(**overrides) -> SweepSpec:
    """A 2-cell spec small enough to execute inside a test."""
    settings = {
        "name": "tiny",
        "seed": 2,
        "n_clusters": 6,
        "axes": {"coverage": (4.0,), "algorithm": ("majority", "bma")},
    }
    settings.update(overrides)
    return SweepSpec(**settings)


# ----------------------------------------------------------------- #
# Spec properties
# ----------------------------------------------------------------- #


class TestExpansion:
    def test_cross_product_size_and_indices(self):
        spec = wide_spec()
        cells = spec.expand()
        assert len(cells) == spec.n_cells == 2 * 2 * 2 * 2 * 2
        assert [cell.index for cell in cells] == list(range(len(cells)))

    def test_unlisted_axes_get_defaults(self):
        spec = tiny_spec()
        cell = spec.expand()[0]
        assert cell.channel == AXIS_DEFAULTS["channel"][0]
        assert cell.severity == "none"
        assert cell.align_backend == "auto"
        assert cell.shards == 1

    def test_expansion_is_deterministic(self):
        assert wide_spec().expand() == wide_spec().expand()

    def test_cells_carry_channel_overrides(self):
        cells = wide_spec().expand()
        hot = [cell for cell in cells if cell.channel == "hot"]
        paper = [cell for cell in cells if cell.channel == "paper"]
        assert hot and paper
        assert all(
            cell.channel_parameters
            == (("deletion_rate", 0.02), ("substitution_rate", 0.04))
            for cell in hot
        )
        assert all(cell.channel_parameters == () for cell in paper)

    def test_cell_digests_unique(self):
        cells = wide_spec().expand()
        assert len({cell.digest() for cell in cells}) == len(cells)
        assert len({cell.cell_id for cell in cells}) == len(cells)

    def test_cell_id_embeds_index_and_coordinates(self):
        cell = wide_spec().expand()[0]
        assert cell.cell_id == (
            f"cell-000-{cell.channel}-{cell.algorithm}-{cell.digest()[:8]}"
        )

    def test_scenario_covers_exactly_the_axes(self):
        cell = wide_spec().expand()[0]
        assert tuple(cell.scenario()) == AXES

    def test_digest_depends_on_scale_not_just_axes(self):
        base = tiny_spec().expand()[0]
        rescaled = tiny_spec(n_clusters=7).expand()[0]
        assert base.scenario() == rescaled.scenario()
        assert base.digest() != rescaled.digest()


class TestRoundTrip:
    def test_from_cells_inverts_expand(self):
        spec = wide_spec()
        assert SweepSpec.from_cells(spec.expand()) == spec

    def test_from_cells_inverts_shuffled_expand(self):
        spec = wide_spec()
        spec.order = "shuffled"
        rebuilt = SweepSpec.from_cells(spec.expand(), order="shuffled")
        assert rebuilt == spec

    def test_parse_inverts_to_toml(self):
        spec = wide_spec()
        assert parse_sweep_spec(spec.to_toml()) == spec

    def test_toml_round_trip_preserves_digest(self):
        spec = wide_spec()
        assert parse_sweep_spec(spec.to_toml()).digest() == spec.digest()

    def test_json_round_trip(self):
        spec = wide_spec()
        payload = json.loads(json.dumps(spec.to_json()))
        assert SweepSpec.from_json(payload) == spec

    def test_json_rejects_unknown_fields(self):
        payload = wide_spec().to_json()
        payload["surprise"] = 1
        with pytest.raises(ConfigError, match="unknown fields.*surprise"):
            SweepSpec.from_json(payload)


class TestShuffledOrder:
    def test_same_seed_same_order(self):
        spec = wide_spec()
        spec.order = "shuffled"
        other = wide_spec()
        other.order = "shuffled"
        assert spec.expand() == other.expand()

    def test_different_seed_different_order(self):
        spec = wide_spec()
        spec.order = "shuffled"
        reseeded = wide_spec()
        reseeded.seed = 8
        reseeded.order = "shuffled"
        assert [c.index for c in spec.expand()] != [
            c.index for c in reseeded.expand()
        ]

    def test_shuffle_permutes_but_preserves_cells(self):
        spec = wide_spec()
        lexicographic = spec.expand()
        spec.order = "shuffled"
        shuffled = spec.expand()
        assert [c.index for c in shuffled] != [c.index for c in lexicographic]
        assert sorted(shuffled, key=lambda c: c.index) != list(shuffled)
        # Same cells, same indices, same digests — only visit order moves,
        # and the seed participates in every digest, not the order.
        by_index = {c.index: c for c in shuffled}
        assert all(
            by_index[c.index].digest() == c.digest() for c in lexicographic
        )

    def test_orders_vocabulary(self):
        assert ORDERS == ("lexicographic", "shuffled")
        with pytest.raises(ConfigError, match="unknown order 'shufled'"):
            tiny_spec(order="shufled")


class TestJobSpecMapping:
    def test_cell_maps_onto_job_spec(self):
        spec = wide_spec()
        cell = next(
            c
            for c in spec.expand()
            if c.channel == "hot" and c.shards == 2 and c.severity == "mild"
        )
        job = cell.job_spec()
        assert job.job_id == cell.cell_id
        assert job.n_clusters == spec.n_clusters
        assert job.mean_coverage == cell.coverage
        assert job.seed == spec.seed
        assert job.shards == 2
        assert job.algorithms == (cell.algorithm,)
        assert job.fault_severity == "mild"
        assert job.align_backend == "auto"
        assert job.channel_backend == "auto"
        assert job.channel_parameters == dict(cell.channel_parameters)

    def test_paper_channel_pins_no_parameter_overrides(self):
        job = tiny_spec().expand()[0].job_spec()
        assert job.channel_parameters is None


class TestValidation:
    def test_scalar_axis_values_coerce_to_one_element_axes(self):
        spec = SweepSpec(name="s", axes={"coverage": 5, "shards": 2})
        assert spec.axes["coverage"] == (5.0,)
        assert spec.axes["shards"] == (2,)

    def test_duplicate_axis_value_rejected(self):
        with pytest.raises(
            ConfigError, match="duplicate value 4.0 in axis 'coverage'"
        ):
            tiny_spec(axes={"coverage": (4.0, 4)})

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigError, match="axis 'coverage' must not be empty"):
            tiny_spec(axes={"coverage": ()})

    @pytest.mark.parametrize(
        ("axes", "message"),
        [
            ({"algorithm": ("mojority",)}, r"unknown algorithm 'mojority'; did you mean 'majority'\?"),
            ({"severity": ("mild-ish",)}, r"unknown severity 'mild-ish'; did you mean 'mild'\?"),
            ({"align_backend": ("numppy",)}, r"unknown align backend 'numppy'; did you mean 'numpy'\?"),
            ({"channel_backend": ("vector",)}, r"unknown channel backend 'vector'; did you mean 'vectorised'\?"),
            ({"channel": ("papre",)}, r"unknown channel 'papre'; did you mean 'paper'\?"),
            ({"coverage": (0,)}, r"coverage values must be > 0"),
            ({"coverage": (True,)}, r"coverage values must be numbers"),
            ({"shards": (1.5,)}, r"shards values must be an integer"),
            ({"workers": (0,)}, r"workers values must be >= 1"),
        ],
    )
    def test_bad_axis_values(self, axes, message):
        with pytest.raises(ConfigError, match=message):
            tiny_spec(axes=axes)

    def test_unknown_axis_gets_suggestion(self):
        with pytest.raises(
            ConfigError, match=r"unknown key 'coverges' in \[axes\]; did you mean 'coverage'\?"
        ):
            tiny_spec(axes={"coverges": (4.0,)})

    def test_paper_preset_cannot_be_redefined(self):
        with pytest.raises(ConfigError, match="'paper' is built in"):
            tiny_spec(channels={"paper": {"substitution_rate": 0.1}})

    def test_unreferenced_preset_rejected(self):
        with pytest.raises(
            ConfigError, match="'cold' is defined but never referenced"
        ):
            tiny_spec(channels={"cold": {"substitution_rate": 0.001}})

    def test_unknown_channel_parameter_gets_suggestion(self):
        with pytest.raises(
            ConfigError, match=r"substition_rate.*did you mean 'substitution_rate'\?"
        ):
            tiny_spec(
                axes={"channel": ("paper", "bad")},
                channels={"bad": {"substition_rate": 0.1}},
            )

    def test_bad_name_rejected(self):
        with pytest.raises(ConfigError, match="sweep name must match"):
            tiny_spec(name="no spaces allowed")

    def test_bool_is_not_an_integer(self):
        with pytest.raises(ConfigError, match="clusters must be an integer"):
            tiny_spec(n_clusters=True)


class TestTomlErrors:
    """Every TOML-level failure carries a ``file:line`` position."""

    def test_typo_in_axes_has_position_and_suggestion(self):
        text = WIDE_TOML.replace("coverage =", "coverges =")
        line = 1 + text.splitlines().index("coverges = [4.0, 6.0]")
        with pytest.raises(
            ConfigError,
            match=rf"sweep\.toml:{line}: unknown key 'coverges' in \[axes\]; "
            r"did you mean 'coverage'\?",
        ) as exc_info:
            parse_sweep_spec(text, source="sweep.toml")
        assert exc_info.value.stage == "config"

    def test_typo_in_sweep_table_has_position(self):
        text = WIDE_TOML.replace("clusters = 12", "clutsers = 12")
        with pytest.raises(
            ConfigError,
            match=r"sweep\.toml:4: unknown key 'clutsers' in \[sweep\]; "
            r"did you mean 'clusters'\?",
        ):
            parse_sweep_spec(text, source="sweep.toml")

    def test_bad_axis_value_points_at_its_line(self):
        text = WIDE_TOML.replace(
            'algorithm = ["majority", "bma"]',
            'algorithm = ["majority", "mba"]',
        )
        line = 1 + text.splitlines().index('algorithm = ["majority", "mba"]')
        with pytest.raises(
            ConfigError, match=rf"sweep\.toml:{line}: unknown algorithm 'mba'"
        ):
            parse_sweep_spec(text, source="sweep.toml")

    def test_unknown_top_level_table(self):
        with pytest.raises(
            ConfigError, match=r"spec\.toml:1: unknown table or key 'axis'"
        ):
            parse_sweep_spec('[axis]\ncoverage = [4.0]\n', source="spec.toml")

    def test_missing_sweep_table(self):
        with pytest.raises(ConfigError, match=r"missing required \[sweep\] table"):
            parse_sweep_spec("[axes]\ncoverage = [4.0]\n", source="spec.toml")

    def test_missing_name(self):
        with pytest.raises(
            ConfigError, match=r"spec\.toml:1: missing required key 'name'"
        ):
            parse_sweep_spec("[sweep]\nseed = 1\n", source="spec.toml")

    def test_invalid_toml(self):
        with pytest.raises(ConfigError, match=r"spec\.toml: invalid TOML"):
            parse_sweep_spec("[sweep\nname=", source="spec.toml")

    def test_duplicate_axis_value_points_at_axis_line(self):
        text = WIDE_TOML.replace("coverage = [4.0, 6.0]", "coverage = [4.0, 4.0]")
        line = 1 + text.splitlines().index("coverage = [4.0, 4.0]")
        with pytest.raises(ConfigError, match=rf"sweep\.toml:{line}: duplicate"):
            parse_sweep_spec(text, source="sweep.toml")


# ----------------------------------------------------------------- #
# Orchestrator conformance (tiny real sweeps)
# ----------------------------------------------------------------- #


class TestConformance:
    def test_every_artifact_is_stamped(self, tmp_path):
        outcome = run_sweep(tiny_spec(), tmp_path / "sweep")
        assert outcome.exit_code == 0
        assert_stamped(read_manifest(tmp_path / "sweep"))
        store = SweepStore(tmp_path / "sweep")
        records = store.cell_records()
        assert len(records) == 2
        for record in records:
            assert_stamped(record)

    def test_rerun_reuses_every_cell(self, tmp_path):
        spec = tiny_spec()
        run_sweep(spec, tmp_path / "sweep")
        again = run_sweep(spec, tmp_path / "sweep")
        assert again.reused == again.succeeded == 2

    def test_perturbed_spec_is_a_loud_mismatch(self, tmp_path):
        run_sweep(tiny_spec(), tmp_path / "sweep")
        perturbed = tiny_spec(n_clusters=7)
        with pytest.raises(ConfigError, match="built from a different spec"):
            run_sweep(perturbed, tmp_path / "sweep")

    def test_tampered_record_is_rederived_not_reused(self, tmp_path):
        spec = tiny_spec()
        first = run_sweep(spec, tmp_path / "sweep")
        record_path = next((tmp_path / "sweep" / "cells").glob("cell-000-*.json"))
        record = json.loads(record_path.read_text())
        pristine_result = json.loads(json.dumps(record["result"]))
        record["result"]["aggregate_error_rate"] = 0.0
        record_path.write_text(json.dumps(record, indent=2) + "\n")

        again = run_sweep(spec, tmp_path / "sweep")
        tampered = next(c for c in again.cells if c.cell.index == 0)
        assert not tampered.reused
        # Re-derived from the journal: the forged number is gone and the
        # record holds the original, journalled result again.
        rewritten = json.loads(record_path.read_text())
        assert rewritten["result"] == pristine_result
        assert rewritten["result"] == first.cells[0].record["result"]

    def test_unstamped_record_is_rederived(self, tmp_path):
        spec = tiny_spec()
        run_sweep(spec, tmp_path / "sweep")
        record_path = next((tmp_path / "sweep" / "cells").glob("cell-001-*.json"))
        record = json.loads(record_path.read_text())
        del record["git_sha"]
        record_path.write_text(json.dumps(record) + "\n")
        again = run_sweep(spec, tmp_path / "sweep")
        assert not next(c for c in again.cells if c.cell.index == 1).reused
        assert_stamped(json.loads(record_path.read_text()))

    def test_status_counts_and_stale_detection(self, tmp_path):
        spec = tiny_spec()
        run_sweep(spec, tmp_path / "sweep")
        status = sweep_status(tmp_path / "sweep")
        assert status["recorded"] == 2
        assert status["stale"] == status["pending"] == 0

        record_path = next((tmp_path / "sweep" / "cells").glob("cell-000-*.json"))
        record = json.loads(record_path.read_text())
        record["job_state"] = "failed"
        record_path.write_text(json.dumps(record) + "\n")
        status = sweep_status(tmp_path / "sweep")
        assert status["recorded"] == 1
        assert status["stale"] == 1

    def test_resume_sweep_needs_no_spec_file(self, tmp_path):
        run_sweep(tiny_spec(), tmp_path / "sweep")
        outcome = resume_sweep(tmp_path / "sweep")
        assert outcome.exit_code == 0
        assert outcome.reused == 2

    def test_resume_of_non_sweep_directory_fails(self, tmp_path):
        with pytest.raises(ConfigError, match="not a sweep directory"):
            resume_sweep(tmp_path)


class TestStore:
    def test_query_by_axis(self, tmp_path):
        run_sweep(tiny_spec(), tmp_path / "sweep")
        store = SweepStore(tmp_path / "sweep")
        assert len(store.query(algorithm="majority")) == 1
        assert len(store.query(algorithm="bma", coverage=4.0)) == 1
        assert store.query(algorithm="divbma") == []

    def test_query_rejects_unknown_axis(self, tmp_path):
        run_sweep(tiny_spec(), tmp_path / "sweep")
        with pytest.raises(ConfigError, match="unknown query axis 'algorithms'"):
            SweepStore(tmp_path / "sweep").query(algorithms="bma")

    def test_results_table_rows(self, tmp_path):
        run_sweep(tiny_spec(), tmp_path / "sweep")
        rows = SweepStore(tmp_path / "sweep").results_table()
        assert [row["algorithm"] for row in rows] == ["majority", "bma"]
        for row in rows:
            assert row["job_state"] == "succeeded"
            assert 0.0 <= row["aggregate_error_rate"] <= 1.0

    def test_list_sweeps_finds_nested_manifests(self, tmp_path):
        run_sweep(tiny_spec(), tmp_path / "a" / "sweep")
        run_sweep(tiny_spec(name="tiny2"), tmp_path / "b" / "deep" / "sweep")
        found = list_sweeps(tmp_path)
        assert sorted(entry["sweep"] for entry in found) == ["tiny", "tiny2"]


# ----------------------------------------------------------------- #
# Backend pinning
# ----------------------------------------------------------------- #


class TestBackendPinning:
    def test_pinned_backends_ignore_poisoned_environment(
        self, tmp_path, monkeypatch
    ):
        """A sweep-launched run never reads the ambient ``REPRO_*_BACKEND``
        variables — backends travel in each cell's durable job spec."""
        monkeypatch.setenv("REPRO_ALIGN_BACKEND", "bogus-backend")
        monkeypatch.setenv("REPRO_CHANNEL_BACKEND", "also-bogus")
        spec = tiny_spec(
            axes={
                "coverage": (4.0,),
                "algorithm": ("bma",),
                "align_backend": ("python",),
                "channel_backend": ("python",),
            }
        )
        outcome = run_sweep(spec, tmp_path / "sweep")
        assert outcome.exit_code == 0
        assert outcome.succeeded == 1

    def test_align_backends_are_bit_identical(self, tmp_path):
        results = {}
        for backend in ("python", "numpy"):
            spec = tiny_spec(
                name=f"pin-{backend}",
                axes={
                    "coverage": (4.0,),
                    "algorithm": ("bma",),
                    "align_backend": (backend,),
                },
            )
            outcome = run_sweep(spec, tmp_path / backend)
            assert outcome.exit_code == 0
            payload = dict(outcome.cells[0].record["result"])
            results[backend] = json.loads(json.dumps(payload, sort_keys=True))
        assert results["python"] == results["numpy"]

    def test_channel_backends_are_bit_identical(self, tmp_path):
        results = {}
        for backend in ("python", "vectorised"):
            spec = tiny_spec(
                name=f"chan-{backend}",
                axes={
                    "coverage": (4.0,),
                    "algorithm": ("majority",),
                    "channel_backend": (backend,),
                },
            )
            outcome = run_sweep(spec, tmp_path / backend)
            assert outcome.exit_code == 0
            payload = dict(outcome.cells[0].record["result"])
            results[backend] = json.loads(json.dumps(payload, sort_keys=True))
        assert results["python"] == results["vectorised"]
