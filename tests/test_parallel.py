"""Tests for the parallel execution engine and the context caches.

The load-bearing property throughout: for the RNG-free stages (profile
fitting, reconstruction, curve accumulation) and for the per-cluster-
seeded simulator, results must be **bit-identical** at every worker
count.  ``REPRO_FORCE_PARALLEL`` is set where the real process pool must
run even on single-core test runners (the serial fallback would
otherwise hide pickling and merge bugs).
"""

from __future__ import annotations

import os
from functools import partial

import pytest

from repro import parallel
from repro.core.coverage import ConstantCoverage, NegativeBinomialCoverage
from repro.core.errors import ErrorModel
from repro.core.profile import ErrorProfile
from repro.core.simulator import Simulator
from repro.data.nanopore import make_nanopore_dataset
from repro.experiments import cache as context_cache
from repro.metrics.curves import (
    merge_curves,
    post_reconstruction_curves,
    pre_reconstruction_curves,
)
from repro.parallel import (
    chunk_items,
    default_chunk_size,
    derive_seed,
    parallel_map,
    resolve_workers,
    set_default_workers,
)
from repro.reconstruct.bma import BMALookahead
from repro.reconstruct.iterative import IterativeReconstruction

WORKER_COUNTS = (1, 2, 4)


def _square(value: int) -> int:
    return value * value


@pytest.fixture
def force_pool(monkeypatch):
    """Force the process pool so single-core runners still exercise it."""
    monkeypatch.setenv(parallel.FORCE_ENV, "1")


@pytest.fixture
def profiling_pool():
    return make_nanopore_dataset(n_clusters=25, seed=2)


class TestParallelMap:
    def test_serial_fallback_matches_comprehension(self):
        assert parallel_map(_square, list(range(20)), workers=1) == [
            value * value for value in range(20)
        ]

    def test_pool_preserves_order(self, force_pool):
        items = list(range(37))
        assert parallel_map(_square, items, workers=2) == [
            value * value for value in items
        ]

    def test_pool_with_explicit_chunk_size(self, force_pool):
        items = list(range(11))
        assert parallel_map(_square, items, workers=2, chunk_size=3) == [
            value * value for value in items
        ]

    def test_empty_items(self, force_pool):
        assert parallel_map(_square, [], workers=4) == []

    def test_partial_functions_are_picklable(self, force_pool):
        fn = partial(pow, 2)
        assert parallel_map(fn, [1, 2, 3, 4], workers=2) == [2, 4, 8, 16]

    def test_worker_exception_propagates(self, force_pool):
        with pytest.raises(ZeroDivisionError):
            parallel_map(partial(divmod, 1), [1, 0], workers=2)


class TestSerialFastPath:
    """The auto-serial dispatch fixes: small inputs, single chunks, and
    the ``REPRO_PARALLEL_MIN_ITEMS`` threshold all skip the pool while
    staying bit-identical to the pool's output."""

    def test_below_min_items_runs_serial(self, monkeypatch):
        def explode(*_args, **_kwargs):  # pragma: no cover - fails the test
            raise AssertionError("the pool must not start for tiny inputs")

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", explode)
        items = list(range(parallel.DEFAULT_MIN_ITEMS - 1))
        assert parallel_map(_square, items, workers=4) == [
            value * value for value in items
        ]

    def test_single_chunk_runs_serial(self, monkeypatch):
        def explode(*_args, **_kwargs):  # pragma: no cover - fails the test
            raise AssertionError("a one-chunk pool is pure overhead")

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", explode)
        items = list(range(8))
        assert parallel_map(_square, items, workers=4, chunk_size=8) == [
            value * value for value in items
        ]

    def test_min_items_env_raises_threshold(self, monkeypatch):
        def explode(*_args, **_kwargs):  # pragma: no cover - fails the test
            raise AssertionError("inputs below the env threshold stay serial")

        monkeypatch.setenv(parallel.MIN_ITEMS_ENV, "50")
        monkeypatch.setattr(parallel, "ProcessPoolExecutor", explode)
        items = list(range(49))
        assert parallel_map(_square, items, workers=4) == [
            value * value for value in items
        ]

    def test_min_items_env_zero_disables_threshold(self, monkeypatch):
        monkeypatch.setenv(parallel.MIN_ITEMS_ENV, "0")
        assert parallel.min_parallel_items() == 0

    def test_min_items_env_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv(parallel.MIN_ITEMS_ENV, "lots")
        assert parallel.min_parallel_items() == parallel.DEFAULT_MIN_ITEMS
        monkeypatch.setenv(parallel.MIN_ITEMS_ENV, "-3")
        assert parallel.min_parallel_items() == parallel.DEFAULT_MIN_ITEMS

    def test_force_bypasses_all_fast_paths(self, force_pool):
        items = [1, 2]
        assert parallel_map(_square, items, workers=1, chunk_size=2) == [1, 4]


class TestWorkerResolution:
    def test_env_default(self, monkeypatch):
        monkeypatch.setenv(parallel.WORKERS_ENV, "3")
        assert parallel.default_workers() == 3

    def test_env_zero_means_all_cores(self, monkeypatch):
        monkeypatch.setenv(parallel.WORKERS_ENV, "0")
        assert parallel.default_workers() == (os.cpu_count() or 1)

    def test_env_garbage_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setenv(parallel.WORKERS_ENV, "many")
        assert parallel.default_workers() == 1

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(parallel.WORKERS_ENV, "3")
        set_default_workers(5)
        try:
            assert parallel.default_workers() == 5
            assert resolve_workers(None) == 5
        finally:
            set_default_workers(None)

    def test_negative_override_rejected(self):
        with pytest.raises(ValueError):
            set_default_workers(-1)

    def test_explicit_argument_wins(self):
        assert resolve_workers(7) == 7
        assert resolve_workers(0) == (os.cpu_count() or 1)


class TestChunking:
    def test_chunks_restore_order(self):
        items = list(range(23))
        chunks = chunk_items(items, workers=4)
        assert [item for chunk in chunks for item in chunk] == items

    def test_default_chunk_size_targets_four_per_worker(self):
        assert default_chunk_size(80, 4) == 5
        assert default_chunk_size(1, 8) == 1
        assert default_chunk_size(0, 2) == 1

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            chunk_items([1, 2], workers=1, chunk_size=0)


class TestDeriveSeed:
    def test_stable_and_distinct(self):
        assert derive_seed(17, 3) == derive_seed(17, 3)
        seeds = {derive_seed(17, index) for index in range(1000)}
        assert len(seeds) == 1000

    def test_base_seed_separates_streams(self):
        assert derive_seed(17, 0) != derive_seed(18, 0)


class TestStageEquivalence:
    """Parallel output must be bit-identical to serial for RNG-free stages."""

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_profile_fit(self, profiling_pool, force_pool, workers):
        serial = ErrorProfile.from_pool(profiling_pool, max_copies_per_cluster=4)
        parallel_fit = ErrorProfile.from_pool(
            profiling_pool, max_copies_per_cluster=4, workers=workers
        )
        assert parallel_fit.statistics == serial.statistics

    def test_profile_fit_with_rng_stays_serial(self, profiling_pool):
        import random

        profile = ErrorProfile.from_pool(
            profiling_pool, max_copies_per_cluster=2,
            rng=random.Random(5), workers=4,
        )
        assert profile.statistics.pair_count > 0

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize(
        "reconstructor", [BMALookahead(), IterativeReconstruction()],
        ids=lambda r: r.name,
    )
    def test_reconstruction(self, profiling_pool, force_pool, workers, reconstructor):
        serial = [
            reconstructor.reconstruct(cluster.copies, 110)
            for cluster in profiling_pool
        ]
        parallel_estimates = reconstructor.reconstruct_pool(
            profiling_pool, 110, workers=workers
        )
        assert parallel_estimates == serial

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_pre_reconstruction_curves(self, profiling_pool, force_pool, workers):
        serial = pre_reconstruction_curves(profiling_pool, max_copies_per_cluster=3)
        result = pre_reconstruction_curves(
            profiling_pool, max_copies_per_cluster=3, workers=workers
        )
        assert result == serial

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_post_reconstruction_curves(self, profiling_pool, force_pool, workers):
        estimates = BMALookahead().reconstruct_pool(profiling_pool, 110, workers=1)
        serial = post_reconstruction_curves(profiling_pool, estimates)
        result = post_reconstruction_curves(
            profiling_pool, estimates, workers=workers
        )
        assert result == serial

    def test_post_curves_length_mismatch(self, profiling_pool):
        with pytest.raises(ValueError):
            post_reconstruction_curves(profiling_pool, ["A"])


class TestMergeCurves:
    def test_pads_shorter_curves(self):
        assert merge_curves([[1, 2, 3], [4], [0, 5]]) == [5, 7, 3]

    def test_empty(self):
        assert merge_curves([]) == []


class TestSeededSimulator:
    def _simulator(self, coverage):
        return Simulator(
            ErrorModel.uniform(0.05), coverage, seed=11, per_cluster_seeds=True
        )

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_deterministic_at_any_worker_count(self, force_pool, workers):
        references = make_nanopore_dataset(n_clusters=12, seed=4).references
        baseline = self._simulator(ConstantCoverage(4)).simulate(
            references, workers=1
        )
        pool = self._simulator(ConstantCoverage(4)).simulate(
            references, workers=workers
        )
        assert [cluster.copies for cluster in pool] == [
            cluster.copies for cluster in baseline
        ]
        assert pool.references == references

    def test_random_coverage_model_is_deterministic(self, force_pool):
        references = make_nanopore_dataset(n_clusters=10, seed=4).references
        coverage = NegativeBinomialCoverage(6.0, 4.0)
        first = self._simulator(coverage).simulate(references, workers=2)
        second = self._simulator(coverage).simulate(references, workers=4)
        assert [cluster.copies for cluster in first] == [
            cluster.copies for cluster in second
        ]

    def test_simulate_like_matches_coverages(self, force_pool, profiling_pool):
        pool = self._simulator(ConstantCoverage(1)).simulate_like(
            profiling_pool, workers=2
        )
        assert pool.coverages() == profiling_pool.coverages()

    def test_per_cluster_seeds_requires_seed(self):
        with pytest.raises(ValueError):
            Simulator(ErrorModel.uniform(0.05), per_cluster_seeds=True)

    def test_default_path_keeps_serial_stream(self):
        """Without the opt-in, simulate() must reproduce the historical
        single-stream draw order exactly (PR 1's RNG contract)."""
        references = make_nanopore_dataset(n_clusters=5, seed=4).references
        one = Simulator(ErrorModel.uniform(0.05), ConstantCoverage(3), seed=9)
        two = Simulator(ErrorModel.uniform(0.05), ConstantCoverage(3), seed=9)
        serial = one.channel.transmit_pool(references, one.coverage)
        via_simulate = two.simulate(references, workers=4)
        assert [cluster.copies for cluster in via_simulate] == [
            cluster.copies for cluster in serial
        ]


class TestContextDiskCache:
    @pytest.fixture(autouse=True)
    def isolated_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv(context_cache.CACHE_DIR_ENV, str(tmp_path))
        monkeypatch.delenv(context_cache.CACHE_ENABLED_ENV, raising=False)
        from repro.experiments import common

        common.clear_contexts()
        yield
        common.clear_contexts()

    def test_second_build_hits_cache(self, monkeypatch):
        from repro.experiments import common

        first = common.ExperimentContext(12)
        assert context_cache.context_cache_path(
            12, common.DATASET_SEED, common.PROFILE_COPIES
        ).exists()

        def explode(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("dataset regenerated despite cache hit")

        monkeypatch.setattr(common, "make_nanopore_dataset", explode)
        second = common.ExperimentContext(12)
        assert second.real_pool.total_copies == first.real_pool.total_copies
        assert second.profile.statistics == first.profile.statistics

    def test_corrupt_entry_regenerates(self):
        from repro.experiments import common

        path = context_cache.context_cache_path(
            11, common.DATASET_SEED, common.PROFILE_COPIES
        )
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not a pickle")
        context = common.ExperimentContext(11)
        assert len(context.real_pool) == 11
        # The corrupt file was replaced by a fresh entry.
        assert context_cache.load_context_artifacts(
            11, common.DATASET_SEED, common.PROFILE_COPIES
        ) is not None

    def test_disabled_cache_writes_nothing(self, monkeypatch, tmp_path):
        from repro.experiments import common

        monkeypatch.setenv(context_cache.CACHE_ENABLED_ENV, "off")
        common.ExperimentContext(10)
        assert list(tmp_path.iterdir()) == []

    def test_clear_cache(self):
        from repro.experiments import common

        common.ExperimentContext(10)
        assert context_cache.clear_cache() == 1
        assert context_cache.load_context_artifacts(
            10, common.DATASET_SEED, common.PROFILE_COPIES
        ) is None


class TestContextLRU:
    @pytest.fixture(autouse=True)
    def isolated(self, tmp_path, monkeypatch):
        monkeypatch.setenv(context_cache.CACHE_DIR_ENV, str(tmp_path))
        from repro.experiments import common

        common.clear_contexts()
        yield
        common.clear_contexts()

    def test_keeps_most_recent_two(self):
        from repro.experiments import common

        first = common.get_context(8)
        second = common.get_context(9)
        third = common.get_context(10)
        assert list(common._CONTEXTS) == [9, 10]
        assert common.get_context(9) is second
        assert common.get_context(10) is third
        # Scale 8 was evicted; a fresh request rebuilds (from disk cache).
        assert common.get_context(8) is not first

    def test_reuse_refreshes_recency(self):
        from repro.experiments import common

        common.get_context(8)
        common.get_context(9)
        common.get_context(8)  # 8 becomes most recent
        common.get_context(10)  # evicts 9, not 8
        assert list(common._CONTEXTS) == [8, 10]

    def test_clear_contexts(self):
        from repro.experiments import common

        common.get_context(8)
        common.clear_contexts()
        assert len(common._CONTEXTS) == 0
