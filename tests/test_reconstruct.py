"""Unit and behavioural tests for the trace-reconstruction algorithms."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coverage import ConstantCoverage
from repro.core.errors import ErrorModel
from repro.core.simulator import Simulator
from repro.core.spatial import VShapedSpatial
from repro.metrics.accuracy import evaluate_reconstruction
from repro.reconstruct.base import majority_symbol
from repro.reconstruct.bma import BMALookahead, bma_forward_pass
from repro.reconstruct.divider_bma import DividerBMA
from repro.reconstruct.iterative import IterativeReconstruction
from repro.reconstruct.majority import PositionalMajority
from repro.reconstruct.two_way import TwoWayIterative

ALL_RECONSTRUCTORS = [
    PositionalMajority(),
    BMALookahead(),
    BMALookahead(two_way=False),
    DividerBMA(),
    IterativeReconstruction(),
    TwoWayIterative(),
]

dna = st.text(alphabet="ACGT", min_size=1, max_size=40)


class TestMajoritySymbol:
    def test_plurality_wins(self):
        assert majority_symbol(["A", "A", "C"]) == "A"

    def test_tie_breaks_lexicographically(self):
        assert majority_symbol(["T", "G"]) == "G"

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            majority_symbol([])


@pytest.mark.parametrize("reconstructor", ALL_RECONSTRUCTORS, ids=lambda r: r.name)
class TestCommonContract:
    def test_empty_cluster_returns_empty(self, reconstructor):
        assert reconstructor.reconstruct([], 10) == ""

    def test_clean_copies_reconstruct_exactly(self, reconstructor):
        reference = "ACGTACGTACGTACGTACGT"
        copies = [reference] * 5
        assert reconstructor.reconstruct(copies, len(reference)) == reference

    def test_single_clean_copy(self, reconstructor):
        reference = "ACGTACGTAC"
        assert reconstructor.reconstruct([reference], 10) == reference

    @settings(max_examples=25, deadline=None)
    @given(dna)
    def test_output_never_exceeds_design_length(self, reconstructor, reference):
        estimate = reconstructor.reconstruct([reference, reference[1:]], len(reference))
        assert len(estimate) <= len(reference) + 1  # majority may trail

    def test_reconstruct_pool_order(self, reconstructor, small_pool):
        estimates = reconstructor.reconstruct_pool(small_pool, 10)
        assert len(estimates) == len(small_pool)
        assert estimates[2] == ""  # the erasure cluster


class TestBMA:
    def test_outvotes_single_substitution(self):
        reference = "ACGTACGTAC"
        copies = [reference, reference, "ACGAACGTAC"]
        assert BMALookahead().reconstruct(copies, 10) == reference

    def test_outvotes_single_deletion(self):
        reference = "ACGTACGTAC"
        copies = [reference, reference, "ACGACGTAC"]
        assert BMALookahead().reconstruct(copies, 10) == reference

    def test_outvotes_single_insertion(self):
        reference = "ACGTACGTAC"
        copies = [reference, reference, "ACGTTACGTAC"]
        assert BMALookahead().reconstruct(copies, 10) == reference

    def test_forward_pass_pads_to_length(self):
        estimate = bma_forward_pass(["AC", "AC"], 6)
        assert len(estimate) == 6

    def test_two_way_splits_at_midpoint(self):
        # Forward and backward halves come from different passes; with
        # clean copies they agree and reproduce the reference.
        reference = "ACGTACGTACG"
        assert BMALookahead(two_way=True).reconstruct([reference] * 3, 11) == reference

    def test_one_way_name(self):
        assert BMALookahead(two_way=False).name == "BMA (one-way)"


class TestIterative:
    def test_refines_substitutions(self):
        reference = "ACGTACGTACGTACGTACGT"
        copies = [
            reference,
            "ACGTACGAACGTACGTACGT",
            "ACGTACGTACGTACCTACGT",
            reference,
            reference,
        ]
        assert IterativeReconstruction().reconstruct(copies, 20) == reference

    def test_restores_majority_deleted_base(self):
        reference = "ACGTACGTACGTACGTACGT"
        # Two copies lost a base; three kept it.
        copies = [reference, reference, reference,
                  "ACGTACGACGTACGTACGT", "ACGTACGACGTACGTACGT"]
        assert IterativeReconstruction().reconstruct(copies, 20) == reference

    def test_invalid_rounds(self):
        with pytest.raises(ValueError):
            IterativeReconstruction(rounds=-1)

    def test_beats_bma_on_noisy_data(self, uniform_pool):
        bma = evaluate_reconstruction(uniform_pool, BMALookahead())
        iterative = evaluate_reconstruction(uniform_pool, IterativeReconstruction())
        assert iterative.per_strand > bma.per_strand


class TestDividerBMA:
    def test_exact_length_majority(self):
        reference = "ACGTACGTAC"
        copies = [reference, "ACGAACGTAC", reference, "ACGTACGTA"]
        # Three exact-length copies out-vote the substitution.
        assert DividerBMA().reconstruct(copies, 10) == reference

    def test_falls_back_to_bma_without_exact_lengths(self):
        reference = "ACGTACGTAC"
        copies = [reference[:-1], reference + "A"]
        estimate = DividerBMA().reconstruct(copies, 10)
        assert len(estimate) == 10


class TestTwoWayIterative:
    def test_improves_on_end_skewed_data(self):
        """The Section 4.3 claim: two-way execution helps when errors are
        concentrated at strand ends."""
        model = ErrorModel.uniform(0.10).with_spatial(VShapedSpatial())
        pool = Simulator(model, ConstantCoverage(5), seed=3).simulate_random(80, 110)
        one_way = evaluate_reconstruction(pool, IterativeReconstruction())
        two_way = evaluate_reconstruction(pool, TwoWayIterative())
        assert two_way.per_strand >= one_way.per_strand
