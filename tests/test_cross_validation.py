"""Cross-validation tests: independent implementations must agree.

These tests pin our from-scratch algorithms against either the standard
library (difflib implements the same Ratcliff-Obershelp gestalt
algorithm) or against round-trip identities (profiling a simulator's own
output must recover the simulator's parameters).
"""

from __future__ import annotations

import difflib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.error_stats import ErrorStatistics
from repro.align.gestalt import gestalt_score, matching_blocks
from repro.baselines.dnasimulator import DNASimulatorBaseline
from repro.core.coverage import ConstantCoverage
from repro.core.errors import ErrorModel, transition_biased_substitution_matrix
from repro.core.simulator import Simulator

dna = st.text(alphabet="ACGT", max_size=40)


class TestGestaltAgainstDifflib:
    @given(dna, dna)
    def test_score_matches_sequence_matcher(self, first, second):
        expected = difflib.SequenceMatcher(
            None, first, second, autojunk=False
        ).ratio()
        assert gestalt_score(first, second) == pytest.approx(expected)

    @given(dna, dna)
    def test_total_matched_size_matches(self, first, second):
        ours = sum(block.size for block in matching_blocks(first, second))
        theirs = sum(
            block.size
            for block in difflib.SequenceMatcher(
                None, first, second, autojunk=False
            ).get_matching_blocks()
        )
        assert ours == theirs


class TestProfilerRecoversChannel:
    """Round-trip identity: ErrorProfile(simulate(model)) ~ model."""

    @pytest.fixture(scope="class")
    def measured(self):
        model = ErrorModel(
            insertion_rate=0.008,
            deletion_rate=0.015,
            substitution_rate=0.025,
            substitution_matrix=transition_biased_substitution_matrix(0.8),
        )
        simulator = Simulator(model, ConstantCoverage(6), seed=77)
        pool = simulator.simulate_random(150, 110)
        statistics = ErrorStatistics()
        statistics.tally_pool(pool)
        return model, statistics

    def test_aggregate_rates_recovered(self, measured):
        model, statistics = measured
        rates = statistics.aggregate_rates()
        assert rates["substitution"] == pytest.approx(0.025, rel=0.15)
        assert rates["insertion"] == pytest.approx(0.008, rel=0.25)
        # Measured single deletions: the aligner occasionally merges two
        # nearby deletions into one "long deletion" run, so allow slack.
        total_deletion = (
            rates["deletion"]
            + rates["long_deletion"] * statistics.mean_long_deletion_length()
        )
        assert total_deletion == pytest.approx(0.015, rel=0.2)

    def test_substitution_matrix_recovered(self, measured):
        _model, statistics = measured
        matrix = statistics.substitution_matrix()
        for original, partner in (("A", "G"), ("T", "C")):
            assert matrix[original][partner] == pytest.approx(0.8, abs=0.12)

    def test_uniform_spatial_measured_flat(self, measured):
        _model, statistics = measured
        rates = statistics.positional_error_rates()
        interior = rates[20:90]
        assert max(interior) < 3 * (sum(interior) / len(interior))


class TestDNASimulatorModelEquivalence:
    """Algorithm 1 and its ErrorModel translation produce statistically
    matching channels."""

    @settings(max_examples=1, deadline=None)
    @given(st.just(0))
    def test_aggregate_error_rates_match(self, _):
        dictionary = {
            base: {
                "substitution": 0.03,
                "insertion": 0.01,
                "deletion": 0.02,
                "long_deletion": 0.002,
            }
            for base in "ACGT"
        }
        baseline = DNASimulatorBaseline(dictionary, coverage=6, seed=3)
        references = None
        from repro.core.alphabet import random_strand
        import random as _random

        rng = _random.Random(4)
        references = [random_strand(110, rng) for _ in range(100)]
        baseline_pool = baseline.generate(references)

        model = baseline.as_error_model()
        model_pool = Simulator(model, ConstantCoverage(6), seed=3).simulate(
            references
        )

        baseline_stats = ErrorStatistics()
        baseline_stats.tally_pool(baseline_pool, max_copies_per_cluster=3)
        model_stats = ErrorStatistics()
        model_stats.tally_pool(model_pool, max_copies_per_cluster=3)

        assert baseline_stats.aggregate_error_rate() == pytest.approx(
            model_stats.aggregate_error_rate(), rel=0.12
        )
