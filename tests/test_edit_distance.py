"""Unit and property tests for repro.align.edit_distance."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.align.edit_distance import (
    edit_distance,
    edit_distance_banded,
    edit_distance_matrix,
    edit_distance_matrix_fast,
    normalized_edit_distance,
)

dna = st.text(alphabet="ACGT", max_size=40)


def reference_edit_distance(first: str, second: str) -> int:
    """Straightforward quadratic reference implementation."""
    rows, columns = len(first) + 1, len(second) + 1
    table = [[0] * columns for _ in range(rows)]
    for row in range(rows):
        table[row][0] = row
    for column in range(columns):
        table[0][column] = column
    for row in range(1, rows):
        for column in range(1, columns):
            cost = 0 if first[row - 1] == second[column - 1] else 1
            table[row][column] = min(
                table[row - 1][column] + 1,
                table[row][column - 1] + 1,
                table[row - 1][column - 1] + cost,
            )
    return table[-1][-1]


class TestEditDistance:
    @pytest.mark.parametrize(
        "first, second, expected",
        [
            ("", "", 0),
            ("A", "", 1),
            ("", "ACG", 3),
            ("ACGT", "ACGT", 0),
            ("ACGT", "AGT", 1),
            ("ACGT", "TGCA", 4),
            ("AAAA", "TTTT", 4),
            ("GATTACA", "GCATGCT", 4),
        ],
    )
    def test_known_values(self, first, second, expected):
        assert edit_distance(first, second) == expected

    @given(dna, dna)
    def test_matches_reference(self, first, second):
        assert edit_distance(first, second) == reference_edit_distance(
            first, second
        )

    @given(dna, dna)
    def test_symmetry(self, first, second):
        assert edit_distance(first, second) == edit_distance(second, first)

    @given(dna)
    def test_identity(self, strand):
        assert edit_distance(strand, strand) == 0

    @given(dna, dna, dna)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)

    @given(dna, dna)
    def test_bounded_by_max_length(self, first, second):
        assert edit_distance(first, second) <= max(len(first), len(second))


class TestBanded:
    @given(dna, dna)
    def test_wide_band_equals_exact(self, first, second):
        band = max(len(first), len(second))
        assert edit_distance_banded(first, second, band) == edit_distance(
            first, second
        )

    @given(dna, dna, st.integers(0, 10))
    def test_band_result_is_exact_or_band_plus_one(self, first, second, band):
        result = edit_distance_banded(first, second, band)
        exact = edit_distance(first, second)
        if exact <= band:
            assert result == exact
        else:
            assert result == band + 1

    def test_length_gap_exceeding_band_shortcuts(self):
        assert edit_distance_banded("A" * 30, "A", 5) == 6

    def test_negative_band_raises(self):
        with pytest.raises(ValueError):
            edit_distance_banded("A", "C", -1)


class TestNormalized:
    def test_empty_pair_is_zero(self):
        assert normalized_edit_distance("", "") == 0.0

    def test_disjoint_is_one(self):
        assert normalized_edit_distance("AAAA", "TTTT") == 1.0

    @given(dna, dna)
    def test_in_unit_interval(self, first, second):
        assert 0.0 <= normalized_edit_distance(first, second) <= 1.0


class TestMatrices:
    @given(dna, dna)
    def test_fast_matrix_matches_pure(self, first, second):
        fast = edit_distance_matrix_fast(first, second)
        rows, columns = len(first) + 1, len(second) + 1
        pure = [[0] * columns for _ in range(rows)]
        for row in range(rows):
            pure[row][0] = row
        for column in range(columns):
            pure[0][column] = column
        for row in range(1, rows):
            for column in range(1, columns):
                cost = 0 if first[row - 1] == second[column - 1] else 1
                pure[row][column] = min(
                    pure[row - 1][column] + 1,
                    pure[row][column - 1] + 1,
                    pure[row - 1][column - 1] + cost,
                )
        assert np.array_equal(fast, np.array(pure))

    def test_matrix_corner_is_distance(self):
        matrix = edit_distance_matrix("ACGT", "AGT")
        assert matrix[4][3] == 1

    def test_large_inputs_route_to_fast_path(self):
        matrix = edit_distance_matrix("ACGT" * 20, "ACGA" * 20)
        assert isinstance(matrix, np.ndarray)
        assert matrix[-1][-1] == edit_distance("ACGT" * 20, "ACGA" * 20)

    @given(dna, dna)
    def test_return_type_is_uniform_across_paths(self, first, second):
        """Both the small pure-Python path and the large vectorised path
        must return the same type: callers previously saw ``list`` below
        the 1024-cell threshold and ``np.ndarray`` above it, diverging on
        mutation/``len``/equality semantics."""
        matrix = edit_distance_matrix(first, second)
        assert isinstance(matrix, np.ndarray)
        assert matrix.dtype == np.int32
        assert matrix.shape == (len(first) + 1, len(second) + 1)

    def test_small_path_matches_fast_path(self):
        small = edit_distance_matrix("ACGT", "AGT")  # 12 cells: small path
        fast = edit_distance_matrix_fast("ACGT", "AGT")
        assert np.array_equal(small, fast)
