"""Property-based round-trip tests for the archive's redundancy codecs.

Each property runs across many randomised trials derived from one fixed
master seed — deterministic in CI, but covering a broad slice of the
input space (lengths, parity budgets, erasure patterns).  Every
assertion message carries the per-trial seed so a failure is
reproducible with ``random.Random(seed)`` in isolation.

The properties encode each codec's *design margin*:

* Reed-Solomon corrects up to ``n_parity // 2`` unknown errors, up to
  ``n_parity`` known erasures, and mixtures with ``2t + e <= n_parity``;
* XOR redundancy survives any single loss per 3-strand group;
* the fountain code decodes after droplet losses within its configured
  overhead.
"""

from __future__ import annotations

import random

import pytest

from repro.pipeline.fountain import fountain_decode, fountain_encode
from repro.pipeline.reed_solomon import ReedSolomon, ReedSolomonError
from repro.pipeline.xor_redundancy import (
    XorRecoveryError,
    decode_groups,
    encode_groups,
)

MASTER_SEED = 20260805

#: Trials per property — enough variety to hit odd/even lengths, empty
#: corruption sets, and boundary budgets, while keeping the suite fast.
N_TRIALS = 25


def _trial_seeds(tag: str) -> list[int]:
    """Per-trial seeds derived deterministically from the master seed."""
    rng = random.Random(f"{MASTER_SEED}:{tag}")
    return [rng.randrange(2**32) for _ in range(N_TRIALS)]


def _corrupt(
    codeword: bytes, positions: list[int], rng: random.Random
) -> bytes:
    corrupted = bytearray(codeword)
    for position in positions:
        original = corrupted[position]
        corrupted[position] = rng.choice(
            [value for value in range(256) if value != original]
        )
    return bytes(corrupted)


# --------------------------------------------------------------------- #
# Reed-Solomon
# --------------------------------------------------------------------- #


class TestReedSolomonRoundtrip:
    @pytest.mark.parametrize("seed", _trial_seeds("rs-errors"))
    def test_corrects_up_to_half_parity_errors(self, seed):
        rng = random.Random(seed)
        n_parity = rng.randrange(2, 17)
        data = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 240 - n_parity)))
        rs = ReedSolomon(n_parity)
        codeword = rs.encode(data)
        n_errors = rng.randrange(0, n_parity // 2 + 1)
        positions = rng.sample(range(len(codeword)), n_errors)
        decoded = rs.decode(_corrupt(codeword, positions, rng))
        assert decoded == data, f"seed={seed} parity={n_parity} errors={n_errors}"

    @pytest.mark.parametrize("seed", _trial_seeds("rs-erasures"))
    def test_corrects_up_to_full_parity_erasures(self, seed):
        rng = random.Random(seed)
        n_parity = rng.randrange(2, 17)
        data = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 240 - n_parity)))
        rs = ReedSolomon(n_parity)
        codeword = rs.encode(data)
        n_erasures = rng.randrange(0, n_parity + 1)
        erasures = rng.sample(range(len(codeword)), n_erasures)
        decoded = rs.decode(
            _corrupt(codeword, erasures, rng), erasure_positions=erasures
        )
        assert decoded == data, f"seed={seed} parity={n_parity} erasures={n_erasures}"

    @pytest.mark.parametrize("seed", _trial_seeds("rs-mixed"))
    def test_corrects_mixed_errors_and_erasures_within_budget(self, seed):
        """Any mix with 2 * errors + erasures <= n_parity must decode."""
        rng = random.Random(seed)
        n_parity = rng.randrange(4, 17)
        data = bytes(rng.randrange(256) for _ in range(rng.randrange(8, 200)))
        rs = ReedSolomon(n_parity)
        codeword = rs.encode(data)
        n_errors = rng.randrange(0, n_parity // 2 + 1)
        n_erasures = rng.randrange(0, n_parity - 2 * n_errors + 1)
        positions = rng.sample(range(len(codeword)), n_errors + n_erasures)
        erasures = positions[:n_erasures]
        decoded = rs.decode(
            _corrupt(codeword, positions, rng), erasure_positions=erasures
        )
        assert decoded == data, (
            f"seed={seed} parity={n_parity} errors={n_errors} "
            f"erasures={n_erasures}"
        )

    def test_too_many_erasures_is_rejected(self):
        rs = ReedSolomon(4)
        codeword = rs.encode(b"hello world")
        with pytest.raises(ReedSolomonError, match="erasures exceed"):
            rs.decode(codeword, erasure_positions=[0, 1, 2, 3, 4])


# --------------------------------------------------------------------- #
# XOR redundancy
# --------------------------------------------------------------------- #


class TestXorRoundtrip:
    @staticmethod
    def _payloads(rng: random.Random) -> list[bytes]:
        length = rng.randrange(1, 40)
        return [
            bytes(rng.randrange(256) for _ in range(length))
            for _ in range(rng.randrange(1, 12))
        ]

    @pytest.mark.parametrize("seed", _trial_seeds("xor-loss"))
    def test_survives_one_loss_per_group(self, seed):
        rng = random.Random(seed)
        payloads = self._payloads(rng)
        encoded = encode_groups(payloads)
        received: list[bytes | None] = list(encoded)
        # Knock out one random strand in every 3-strand group (and at
        # most one of the trailing replicated pair).
        n_pairs = len(payloads) // 2
        for group in range(n_pairs):
            received[group * 3 + rng.randrange(3)] = None
        if len(payloads) % 2 == 1:
            received[n_pairs * 3 + rng.randrange(2)] = None
        decoded = decode_groups(received, len(payloads))
        assert decoded == payloads, f"seed={seed} n={len(payloads)}"

    @pytest.mark.parametrize("seed", _trial_seeds("xor-clean"))
    def test_lossless_roundtrip(self, seed):
        rng = random.Random(seed)
        payloads = self._payloads(rng)
        decoded = decode_groups(encode_groups(payloads), len(payloads))
        assert decoded == payloads, f"seed={seed}"

    def test_two_losses_in_a_group_fail(self):
        payloads = [b"aaaa", b"bbbb"]
        received: list[bytes | None] = list(encode_groups(payloads))
        received[0] = received[1] = None
        with pytest.raises(XorRecoveryError, match="two of three"):
            decode_groups(received, len(payloads))


# --------------------------------------------------------------------- #
# Fountain code
# --------------------------------------------------------------------- #


class TestFountainRoundtrip:
    """A fountain code's margin is probabilistic: decoding succeeds iff
    the received droplets span the chunk space over GF(2).  The decoder
    property asserted per trial is therefore *optimality* — decode must
    succeed whenever the droplet equations have full rank — and the
    margin property is aggregate: at the archive's design overhead,
    rank-deficient trials must stay rare."""

    #: Rank-deficient trials allowed out of N_TRIALS.  Per-trial
    #: deficiency probability at these overheads is a few percent, so 3
    #: of 25 bounds the fixed-seed draws with margin while still failing
    #: if the degree distribution or droplet generation regresses.
    MAX_RANK_DEFICIENT = 3

    @staticmethod
    def _has_full_rank(droplets, n_chunks: int) -> bool:
        """GF(2) rank check of the received droplets' equations."""
        from repro.pipeline.fountain import _neighbours, robust_soliton

        distribution = robust_soliton(n_chunks)
        pivots: dict[int, int] = {}
        for droplet in droplets:
            mask = 0
            for index in _neighbours(droplet.seed, n_chunks, distribution):
                mask |= 1 << index
            while mask:
                low = (mask & -mask).bit_length() - 1
                if low not in pivots:
                    pivots[low] = mask
                    break
                mask ^= pivots[low]
        return len(pivots) == n_chunks

    def _run_trials(self, tag: str, overhead: float, drop_half_surplus: bool):
        deficient = []
        for seed in _trial_seeds(tag):
            rng = random.Random(seed)
            data = bytes(
                rng.randrange(256) for _ in range(rng.randrange(40, 400))
            )
            chunk_size = rng.randrange(4, 33)
            droplets, n_chunks = fountain_encode(
                data, chunk_size, overhead=overhead, seed=seed
            )
            kept = list(droplets)
            if drop_half_surplus:
                for _ in range((len(droplets) - n_chunks) // 2):
                    kept.pop(rng.randrange(len(kept)))
            if self._has_full_rank(kept, n_chunks):
                decoded = fountain_decode(kept, n_chunks, chunk_size, len(data))
                assert decoded == data, (
                    f"full-rank droplets failed to decode: seed={seed} "
                    f"chunks={n_chunks} droplets={len(kept)}"
                )
            else:
                deficient.append(seed)
        assert len(deficient) <= self.MAX_RANK_DEFICIENT, (
            f"rank-deficient droplet sets in {len(deficient)}/{N_TRIALS} "
            f"trials (seeds {deficient})"
        )

    def test_lossless_decodes_whenever_droplets_span(self):
        self._run_trials("fountain-clean", overhead=0.4, drop_half_surplus=False)

    def test_decodes_after_erasures_at_design_overhead(self):
        """At the archive's design overhead (1.2), dropping half the
        surplus droplets must leave the data decodable in every
        full-rank trial."""
        self._run_trials(
            "fountain-erasures", overhead=1.2, drop_half_surplus=True
        )
