"""Unit tests for the SVG renderer and the report generator."""

from __future__ import annotations

import xml.dom.minidom

import pytest

from repro.report.charts import (
    bar_chart,
    curve_chart,
    grouped_bar_chart,
    line_chart,
)
from repro.report.report import ReportBuilder, generate_report
from repro.report.svg import SVGCanvas


def assert_valid_svg(document: str) -> None:
    parsed = xml.dom.minidom.parseString(document)
    assert parsed.documentElement.tagName == "svg"


class TestCanvas:
    def test_coordinate_mapping_corners(self):
        canvas = SVGCanvas(width=200, height=100)
        canvas.set_ranges((0, 10), (0, 5))
        assert canvas.x_pixel(0) == pytest.approx(canvas.margin_left)
        assert canvas.x_pixel(10) == pytest.approx(
            canvas.width - canvas.margin_right
        )
        assert canvas.y_pixel(0) == pytest.approx(
            canvas.height - canvas.margin_bottom
        )
        assert canvas.y_pixel(5) == pytest.approx(canvas.margin_top)

    def test_degenerate_range_widened(self):
        canvas = SVGCanvas()
        canvas.set_ranges((3, 3), (7, 7))
        # Must not divide by zero.
        canvas.x_pixel(3)
        canvas.y_pixel(7)

    def test_render_is_valid_xml(self):
        canvas = SVGCanvas()
        canvas.set_ranges((0, 1), (0, 1))
        canvas.axes("x", "y")
        canvas.title("A <title> & more")
        canvas.polyline([(0, 0), (1, 1)], "#000000")
        canvas.bar(0.5, 0.5, 0.1, "#ff0000")
        canvas.legend([("series <1>", "#00ff00")])
        assert_valid_svg(canvas.render())

    def test_text_is_escaped(self):
        canvas = SVGCanvas()
        canvas.text(0, 0, "<script>")
        assert "<script>" not in canvas.render()


class TestCharts:
    def test_line_chart_valid(self):
        svg = line_chart(
            {"a": [(0, 1), (1, 2)], "b": [(0, 2), (1, 1)]},
            title="t", x_label="x", y_label="y",
        )
        assert_valid_svg(svg)
        assert "polyline" in svg

    def test_line_chart_empty_series(self):
        assert_valid_svg(line_chart({}, title="empty"))

    def test_curve_chart_valid(self):
        assert_valid_svg(curve_chart({"curve": [0, 3, 1, 4]}))

    def test_bar_chart_valid(self):
        svg = bar_chart([1.0, 2.5, 0.5], title="bars")
        assert_valid_svg(svg)
        assert svg.count("<rect") >= 4  # background + 3 bars

    def test_bar_chart_empty(self):
        assert_valid_svg(bar_chart([]))

    def test_grouped_bar_chart_valid(self):
        svg = grouped_bar_chart(
            {"g1": {"a": 10.0, "b": 20.0}, "g2": {"a": 15.0}},
            title="groups", y_label="value",
        )
        assert_valid_svg(svg)


class TestChartEdgeCases:
    """NaN/inf inputs, single points, and all-empty series must render a
    valid document with a visible placeholder — never malformed SVG or a
    hang."""

    def test_empty_series_placeholder(self):
        svg = line_chart({}, title="empty")
        assert_valid_svg(svg)
        assert "no data" in svg

    def test_all_nan_series_placeholder(self):
        nan = float("nan")
        svg = line_chart({"a": [(0, nan), (1, nan)]})
        assert_valid_svg(svg)
        assert "no data" in svg
        assert "nan" not in svg.lower().replace("no data", "")

    def test_mixed_nan_points_skipped(self):
        svg = line_chart({"a": [(0, 1.0), (1, float("nan")), (2, 3.0)]})
        assert_valid_svg(svg)
        assert "polyline" in svg
        assert "NaN" not in svg

    def test_inf_does_not_hang_or_leak(self):
        # _nice_ceiling(inf) used to loop forever; now the inf point is
        # dropped before the axis limit is computed.
        svg = line_chart({"a": [(0, 1.0), (1, float("inf"))]})
        assert_valid_svg(svg)
        assert "inf" not in svg.lower()

    def test_single_point_series_draws_marker(self):
        svg = line_chart({"only": [(2.0, 5.0)]})
        assert_valid_svg(svg)
        assert "<circle" in svg  # a 1-point polyline renders nothing

    def test_bar_chart_all_nonfinite_placeholder(self):
        svg = bar_chart([float("nan"), float("inf")])
        assert_valid_svg(svg)
        assert "no data" in svg

    def test_bar_chart_skips_nonfinite_keeps_positions(self):
        svg = bar_chart([1.0, float("nan"), 3.0])
        assert_valid_svg(svg)
        assert svg.count("<rect") == 3  # background + 2 finite bars

    def test_grouped_bar_chart_nonfinite_cells_skipped(self):
        svg = grouped_bar_chart(
            {"g1": {"a": float("nan"), "b": 2.0}, "g2": {"a": 1.0}}
        )
        assert_valid_svg(svg)
        assert "NaN" not in svg

    def test_grouped_bar_chart_all_nonfinite_placeholder(self):
        svg = grouped_bar_chart({"g1": {"a": float("inf")}})
        assert_valid_svg(svg)
        assert "no data" in svg

    def test_canvas_nonfinite_range_falls_back(self):
        canvas = SVGCanvas(width=100, height=100)
        canvas.set_ranges((0.0, float("inf")), (float("nan"), 1.0))
        # Both ranges fell back to the unit range: mapping stays finite.
        assert canvas.x_pixel(0.5) == pytest.approx(
            canvas.margin_left + canvas.plot_width / 2
        )
        assert_valid_svg(canvas.render())

    def test_placeholder_message_rendered(self):
        canvas = SVGCanvas()
        canvas.set_ranges((0, 1), (0, 1))
        canvas.placeholder("series went missing")
        assert "series went missing" in canvas.render()


class TestReportBuilder:
    def test_builder_writes_index_and_figures(self, tmp_path):
        builder = ReportBuilder(tmp_path)
        builder.heading("Section")
        builder.paragraph("Some text with <angle brackets>.")
        builder.table(["col"], [["value & more"]])
        builder.figure(bar_chart([1.0]), "a figure")
        index = builder.write("Title")
        assert index.exists()
        html = index.read_text()
        assert "Section" in html
        assert "&lt;angle brackets&gt;" in html
        assert (tmp_path / "figure_01.svg").exists()


class TestFullReport:
    def test_generate_report_small_scale(self, tmp_path):
        index = generate_report(tmp_path, n_clusters=30)
        assert index.exists()
        svgs = list(tmp_path.glob("*.svg"))
        assert len(svgs) >= 15
        for svg in svgs:
            assert_valid_svg(svg.read_text())
        html = index.read_text()
        for marker in ("Table 2.1", "Fig. 3.3", "Appendix C", "Extensions"):
            assert marker in html
