"""Smoke + shape tests for the experiment runners at small scale.

These run every table/figure reproduction at a reduced cluster count and
assert the qualitative result shapes of DESIGN.md section 4.  The
benchmark harness repeats the same runs at full experiment scale.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    ablation,
    appendix_c,
    ext_two_way,
    fig_3_2,
    fig_3_3,
    fig_3_4,
    fig_3_6,
    fig_3_8,
    fig_3_9,
    fig_3_10,
    table_1_1,
    table_2_2,
    table_3_1,
)

SCALE = 60  # clusters; small but large enough for stable orderings


class TestTable11:
    def test_rows_match_paper(self):
        rows = table_1_1.run(verbose=False)
        assert len(rows) == 3
        assert rows[2]["technology"] == "3rd Gen. (Nanopore)"
        assert rows[2]["error_rate"] == "10%"


class TestTable22:
    @pytest.fixture(scope="class")
    def results(self):
        return table_2_2.run(n_clusters=SCALE, verbose=False)

    def test_simulated_overestimates_accuracy(self, results):
        """The paper's core Table 2.2 finding at both coverages."""
        for coverage in (5, 6):
            real = results[("Nanopore", coverage)]
            simulated = results[("DNASimulator", coverage)]
            for algorithm in ("BMA", "Iterative"):
                assert simulated[algorithm][0] > real[algorithm][0]

    def test_higher_coverage_more_accurate(self, results):
        assert (
            results[("Nanopore", 6)]["Iterative"][0]
            >= results[("Nanopore", 5)]["Iterative"][0]
        )


class TestTable31:
    @pytest.fixture(scope="class")
    def results(self):
        return table_3_1.run(n_clusters=SCALE, verbose=False)

    def test_all_rows_present(self, results):
        assert set(results) == {
            "Nanopore",
            "Naive Simulator",
            '" + Cond. Prob + Del',
            '" + Spatial Skew',
            '" + 2nd-order Errors',
        }

    def test_naive_overestimates_bma(self, results):
        assert results["Naive Simulator"]["BMA"][0] > results["Nanopore"]["BMA"][0]

    def test_full_model_closer_than_naive_for_bma(self, results):
        real = results["Nanopore"]["BMA"][0]
        naive_gap = abs(results["Naive Simulator"]["BMA"][0] - real)
        full_gap = abs(results['" + 2nd-order Errors']["BMA"][0] - real)
        assert full_gap < naive_gap

    def test_skew_drops_iterative(self, results):
        """Adding the three-position skew collapses Iterative accuracy
        (the over-correction of Section 3.3.2)."""
        assert (
            results['" + Spatial Skew']["Iterative"][0]
            < results['" + Cond. Prob + Del']["Iterative"][0]
        )


class TestFig32:
    def test_gestalt_end_heavier_than_start(self):
        result = fig_3_2.run(n_clusters=SCALE, verbose=False)
        assert result["gestalt_end_to_start_ratio"] > 1.2

    def test_hamming_mass_exceeds_gestalt_mass(self):
        result = fig_3_2.run(n_clusters=SCALE, verbose=False)
        assert sum(result["hamming_curve"]) > sum(result["gestalt_curve"])


class TestFig33:
    def test_accuracy_rises_with_coverage(self):
        series = fig_3_3.run(n_clusters=SCALE, verbose=False)
        assert series[6][0] > series[2][0]
        assert series[10][0] >= series[4][0]


class TestFig34:
    def test_curve_shapes(self):
        result = fig_3_4.run(n_clusters=SCALE, verbose=False)
        assert result["iterative_rising"]
        # BMA's A-shape needs the middle third to dominate; under the
        # end-skewed real channel the peak may shift right, so only the
        # rising Iterative shape is asserted strictly here (the uniform
        # channel's A-shape is asserted in the sensitivity tests).


class TestFig36:
    def test_top_errors_cover_majority(self):
        result = fig_3_6.run(n_clusters=SCALE, verbose=False)
        assert result["top10_fraction"] > 0.5
        assert len(result["top_errors"]) == 10


class TestFig38:
    def test_middle_concentration_grows_with_coverage(self):
        result = fig_3_8.run(n_clusters=40, verbose=False)
        assert result["middle_share"][10] > result["middle_share"][5]


class TestFig39:
    def test_shapes_measured_correctly(self):
        result = fig_3_9.run(n_clusters=40, verbose=False)
        assert result["shape_checks"]["A-shaped"]
        assert result["shape_checks"]["V-shaped"]


class TestFig310:
    def test_a_beats_v_for_bma(self):
        result = fig_3_10.run(n_clusters=40, verbose=False)
        assert result["a_beats_v"]


class TestAppendixC:
    def test_grid_complete(self):
        grid = appendix_c.run(n_clusters=30, verbose=False)
        assert len(grid) == 5
        for algorithms in grid.values():
            assert set(algorithms) == {"BMA", "Iterative"}


class TestExtension:
    def test_two_way_competitive_with_iterative(self):
        results = ext_two_way.run(n_clusters=SCALE, verbose=False)
        for cell in results.values():
            one_way = cell["Iterative"][0]
            two_way = cell["Two-way Iterative"][0]
            assert two_way >= one_way - 3.0  # never materially worse


class TestAblation:
    def test_gap_shrinks_with_model_stages(self):
        result = ablation.run(n_clusters=SCALE, verbose=False)
        variants = result["variants"]
        assert variants["second_order"][1] < variants["naive"][1]
