"""Unit tests for strand layout and CRC (repro.pipeline.synthesis)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pipeline.encoding import Basic2BitCodec, RotationCodec
from repro.pipeline.synthesis import StrandLayout, StrandParseError, crc8


class TestCrc8:
    def test_deterministic(self):
        assert crc8(b"hello") == crc8(b"hello")

    def test_detects_single_bit_flip(self):
        original = crc8(b"hello")
        assert crc8(b"hellp") != original

    def test_empty_payload(self):
        assert crc8(b"") == 0

    @given(st.binary(max_size=40))
    def test_in_byte_range(self, payload):
        assert 0 <= crc8(payload) <= 255


class TestStrandLayout:
    @pytest.fixture
    def layout(self):
        return StrandLayout("ACGTACGTACGTACGTACGT", Basic2BitCodec(), 8)

    def test_build_parse_roundtrip(self, layout):
        strand = layout.build(42, b"\x01\x02\x03\x04\x05\x06\x07\x08")
        index, payload = layout.parse(strand)
        assert index == 42
        assert payload == b"\x01\x02\x03\x04\x05\x06\x07\x08"

    @given(index=st.integers(0, 65535), payload=st.binary(min_size=8, max_size=8))
    def test_roundtrip_property(self, index, payload):
        layout = StrandLayout("ACGT", RotationCodec(), 8)
        assert layout.parse(layout.build(index, payload)) == (index, payload)

    def test_strand_length_consistent(self, layout):
        strand = layout.build(0, bytes(8))
        assert len(strand) == layout.strand_length()

    def test_index_out_of_range(self, layout):
        with pytest.raises(ValueError):
            layout.build(65536, bytes(8))

    def test_wrong_payload_size(self, layout):
        with pytest.raises(ValueError):
            layout.build(0, bytes(7))

    def test_parse_detects_corruption_via_crc(self, layout):
        strand = layout.build(7, bytes(8))
        body_start = len(layout.primer)
        corrupted = (
            strand[: body_start + 3]
            + ("A" if strand[body_start + 3] != "A" else "C")
            + strand[body_start + 4 :]
        )
        with pytest.raises(StrandParseError):
            layout.parse(corrupted)

    def test_parse_rejects_wrong_length(self, layout):
        strand = layout.build(7, bytes(8))
        with pytest.raises(StrandParseError):
            layout.parse(strand[:-4])

    def test_parse_rejects_shorter_than_primer(self, layout):
        with pytest.raises(StrandParseError):
            layout.parse("ACG")

    def test_empty_primer_allowed(self):
        layout = StrandLayout("", Basic2BitCodec(), 4)
        assert layout.parse(layout.build(1, bytes(4)))[0] == 1

    def test_invalid_payload_bytes(self):
        with pytest.raises(ValueError):
            StrandLayout("ACGT", Basic2BitCodec(), 0)
