"""Unit tests for the physical-process models: PCR, decay, primers."""

from __future__ import annotations

import random

import pytest

from repro.pipeline.decay import DecayParameters, StorageDecay
from repro.pipeline.pcr import AmplifiedPool, PCRAmplifier, PCRParameters
from repro.pipeline.primers import (
    PrimerDesignError,
    generate_primer_library,
    is_valid_primer,
    match_primer,
)
from repro.align.edit_distance import edit_distance
from repro.core.alphabet import gc_content, longest_homopolymer


class TestPCR:
    def test_amplification_grows_population(self, rng):
        amplifier = PCRAmplifier(rng=rng)
        pool = amplifier.amplify(["ACGTACGTACGTACGTACGT"], cycles=8)
        assert pool.copy_number(0) > 10

    def test_zero_cycles_identity(self, rng):
        amplifier = PCRAmplifier(rng=rng)
        pool = amplifier.amplify(["ACGT"], cycles=0)
        assert pool.copy_number(0) == 1

    def test_negative_cycles_raises(self, rng):
        with pytest.raises(ValueError):
            PCRAmplifier(rng=rng).amplify(["ACGT"], cycles=-1)

    def test_gc_bias_slows_extreme_strands(self, rng):
        parameters = PCRParameters(substitution_rate=0.0)
        amplifier = PCRAmplifier(parameters, rng)
        balanced = "ACGT" * 10
        extreme = "G" * 40
        assert parameters.efficiency(balanced) > parameters.efficiency(extreme)
        pools = amplifier.amplify([balanced] * 5 + [extreme] * 5, cycles=10)
        balanced_mean = sum(pools.copy_number(i) for i in range(5)) / 5
        extreme_mean = sum(pools.copy_number(i) for i in range(5, 10)) / 5
        assert balanced_mean > extreme_mean

    def test_off_target_strands_barely_amplify(self, rng):
        amplifier = PCRAmplifier(rng=rng)
        pool = amplifier.amplify(
            ["ACGT" * 10, "TGCA" * 10],
            cycles=10,
            selected=[True, False],
        )
        assert pool.copy_number(0) > 5 * pool.copy_number(1)

    def test_selected_flags_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            PCRAmplifier(rng=rng).amplify(["ACGT"], selected=[True, False])

    def test_mutations_tracked_as_variants(self):
        parameters = PCRParameters(substitution_rate=0.02)
        amplifier = PCRAmplifier(parameters, random.Random(0))
        pool = amplifier.amplify(["ACGT" * 10], cycles=10)
        assert len(pool.molecules[0]) > 1  # at least one mutant variant

    def test_sample_reads_proportional(self, rng):
        pool = AmplifiedPool(molecules=[[("AAAA", 99)], [("CCCC", 1)]])
        reads = pool.sample_reads(200, rng)
        from collections import Counter

        counts = Counter(index for index, _sequence in reads)
        assert counts[0] > counts[1]

    def test_sample_reads_empty_pool(self, rng):
        pool = AmplifiedPool(molecules=[[("AAAA", 0)]])
        assert pool.sample_reads(5, rng) == []


class TestDecay:
    def test_zero_years_no_loss(self, rng):
        decay = StorageDecay(rng=rng)
        assert decay.age_strand("ACGT", 0.0) == "ACGT"

    def test_survival_probability_halves_at_half_life(self):
        parameters = DecayParameters(half_life_years=100.0)
        assert parameters.survival_probability(100.0) == pytest.approx(0.5)

    def test_negative_years_raises(self):
        with pytest.raises(ValueError):
            DecayParameters().survival_probability(-1.0)

    def test_long_storage_loses_strands(self, rng):
        decay = StorageDecay(DecayParameters(half_life_years=10.0), rng)
        aged = decay.age_pool(["ACGT"] * 500, years=30.0)
        lost = sum(1 for strand in aged if strand is None)
        assert lost / 500 == pytest.approx(1 - 0.5 ** 3, abs=0.08)

    def test_deamination_damages_c_and_g_only(self):
        decay = StorageDecay(
            DecayParameters(half_life_years=1e9, deamination_rate_per_year=0.001),
            random.Random(0),
        )
        aged = decay.age_strand("ACGT" * 100, years=500.0)
        assert aged is not None
        for original, after in zip("ACGT" * 100, aged):
            if original != after:
                assert (original, after) in {("C", "T"), ("G", "A")}

    def test_expected_loss_fraction(self):
        decay = StorageDecay(DecayParameters(half_life_years=100.0))
        assert decay.expected_loss_fraction(100.0) == pytest.approx(0.5)


class TestPrimers:
    def test_valid_primer_constraints(self):
        assert is_valid_primer("ACGTACGTACGTACGTACGT")
        assert not is_valid_primer("AAAAACGTACGTACGTACGT")  # homopolymer
        assert not is_valid_primer("ATATATATATATATATATAT")  # GC too low

    def test_library_properties(self, rng):
        library = generate_primer_library(6, rng, min_distance=8)
        assert len(library) == 6
        for primer in library:
            assert len(primer) == 20
            assert 0.4 <= gc_content(primer) <= 0.6
            assert longest_homopolymer(primer) <= 2
        for first_index, first in enumerate(library):
            for second in library[first_index + 1 :]:
                assert edit_distance(first, second) >= 8

    def test_impossible_library_raises(self, rng):
        with pytest.raises(PrimerDesignError):
            generate_primer_library(
                50, rng, length=4, min_distance=4, max_attempts_per_primer=5
            )

    def test_match_primer_tolerates_noise(self, rng):
        library = generate_primer_library(4, rng, min_distance=8)
        target = library[2]
        noisy = "T" + target[2:]  # one substitution + one deletion
        assert match_primer(noisy, library) == target

    def test_match_primer_rejects_foreign(self, rng):
        library = generate_primer_library(3, rng, min_distance=8)
        assert match_primer("A" * 20, library, max_distance=3) is None

    def test_zero_count_library(self, rng):
        assert generate_primer_library(0, rng) == []
