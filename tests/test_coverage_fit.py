"""Unit tests for coverage-model fitting."""

from __future__ import annotations

import random

import pytest

from repro.analysis.coverage_fit import (
    coverage_fit_report,
    estimate_erasure_rate,
    fit_coverage_model,
    fit_negative_binomial,
)
from repro.core.coverage import (
    ConstantCoverage,
    ErasureCoverage,
    NegativeBinomialCoverage,
    PoissonCoverage,
)
from repro.core.strand import Cluster, StrandPool


def pool_with_coverages(coverages: list[int]) -> StrandPool:
    return StrandPool(
        [Cluster("ACGT", ["ACGT"] * coverage) for coverage in coverages]
    )


class TestNegativeBinomialFit:
    def test_recovers_known_parameters(self, rng):
        truth = NegativeBinomialCoverage(mean=25.0, dispersion=4.0)
        draws = truth.draw(6000, rng)
        fitted = fit_negative_binomial(draws)
        assert fitted.mean == pytest.approx(25.0, rel=0.1)
        assert fitted.dispersion == pytest.approx(4.0, rel=0.4)

    def test_rejects_underdispersed_data(self):
        with pytest.raises(ValueError, match="over-dispersed"):
            fit_negative_binomial([5, 5, 5, 5])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            fit_negative_binomial([])


class TestErasureRate:
    def test_counts_empty_clusters(self):
        pool = pool_with_coverages([3, 0, 2, 0])
        assert estimate_erasure_rate(pool) == pytest.approx(0.5)

    def test_empty_pool(self):
        assert estimate_erasure_rate(StrandPool()) == 0.0


class TestModelSelection:
    def test_constant_for_zero_variance(self):
        model = fit_coverage_model(pool_with_coverages([4, 4, 4]))
        assert isinstance(model, ConstantCoverage)
        assert model.coverage == 4

    def test_poisson_for_moderate_dispersion(self, rng):
        draws = PoissonCoverage(8.0).draw(500, rng)
        draws = [max(1, value) for value in draws]  # strip erasures
        model = fit_coverage_model(pool_with_coverages(draws))
        # Sample dispersion of Poisson data hovers around 1, so the fit
        # may land on either side of the Poisson/NB boundary; what must
        # hold is the mean and the absence of heavy over-dispersion.
        if isinstance(model, NegativeBinomialCoverage):
            assert model.mean == pytest.approx(8.0, rel=0.15)
            assert model.dispersion > 5.0  # near-Poisson tail
        else:
            assert isinstance(model, (PoissonCoverage, ConstantCoverage))

    def test_negative_binomial_for_overdispersion(self, rng):
        draws = NegativeBinomialCoverage(20.0, 3.0).draw(800, rng)
        draws = [max(1, value) for value in draws]
        model = fit_coverage_model(pool_with_coverages(draws))
        assert isinstance(model, NegativeBinomialCoverage)

    def test_erasures_wrap_model(self, rng):
        draws = NegativeBinomialCoverage(20.0, 3.0).draw(400, rng)
        draws = [max(1, value) for value in draws] + [0] * 40
        model = fit_coverage_model(pool_with_coverages(draws))
        assert isinstance(model, ErasureCoverage)
        assert model.erasure_probability == pytest.approx(40 / 440, rel=0.01)

    def test_erasures_can_be_excluded(self):
        pool = pool_with_coverages([3, 3, 0])
        model = fit_coverage_model(pool, include_erasures=False)
        assert isinstance(model, ConstantCoverage)

    def test_empty_pool_raises(self):
        with pytest.raises(ValueError):
            fit_coverage_model(StrandPool())

    def test_all_erasures(self):
        model = fit_coverage_model(pool_with_coverages([0, 0]))
        assert isinstance(model, ConstantCoverage)
        assert model.coverage == 0


class TestEndToEnd:
    def test_fits_the_wetlab_substitute(self, nanopore_pool):
        """The synthetic Nanopore data is generated negative-binomially;
        the fit must recognise that and recover the mean."""
        model = fit_coverage_model(nanopore_pool)
        inner = model.inner if isinstance(model, ErasureCoverage) else model
        assert isinstance(inner, NegativeBinomialCoverage)
        assert inner.mean == pytest.approx(nanopore_pool.mean_coverage, rel=0.1)

    def test_fitted_model_reproduces_distribution(self, nanopore_pool, rng):
        model = fit_coverage_model(nanopore_pool)
        draws = model.draw(4000, rng)
        import statistics

        assert statistics.fmean(draws) == pytest.approx(
            nanopore_pool.mean_coverage, rel=0.15
        )
        # Over-dispersion is preserved.
        assert statistics.pvariance(draws) > statistics.fmean(draws)

    def test_report_contents(self, nanopore_pool):
        report = coverage_fit_report(nanopore_pool)
        assert report["model"] in (
            "NegativeBinomialCoverage",
            "ErasureCoverage",
        )
        assert report["mean"] > 0
