"""Statistical conformance tests: the channel vs the paper's Section 3.2/3.3.

Each test generates data through the ground-truth Nanopore channel with a
fixed seed, *measures* it the way the paper does (maximum-likelihood edit
operations, :class:`ErrorStatistics`), and checks the measured statistic
against the paper's reported value:

* conditional substitution matrix — transitions (T<->C, A<->G) dominate
  transversions (~0.4 vs ~0.01 in the paper's Table; chi-square);
* negative-binomial coverage — mean ~26.97, KS distance to the NB CDF,
  and the explicit 16/10,000 empty-cluster rate;
* aggregate IDS error rate ~5.9%;
* terminal skew — errors at the strand end ~2x the start;
* long-deletion run lengths — 84 / 13 / 1.8 / 0.2 / 0.02 % for 2..6.

All statistics are hand-rolled (``math.lgamma``; no scipy) so the suite
runs in any CI environment.  Tolerances are documented inline next to the
critical value they encode.  Negative controls perturb channel parameters
2x and assert the same statistic then FAILS its threshold — guarding
against tolerances so loose the tests could never catch a regression.
"""

from __future__ import annotations

import math
import random
from collections import Counter
from collections.abc import Callable, Sequence

import pytest

from repro.analysis.error_stats import ErrorStatistics
from repro.core.alphabet import TRANSITION, random_strand
from repro.core.channel import Channel
from repro.core.channel_backend import set_channel_backend
from repro.core.coverage import (
    ConstantCoverage,
    ErasureCoverage,
    NegativeBinomialCoverage,
)
from repro.data.nanopore import (
    PAPER_AGGREGATE_ERROR,
    PAPER_ERASURE_COUNT,
    PAPER_MEAN_COVERAGE,
    PAPER_N_CLUSTERS,
    PAPER_STRAND_LENGTH,
    NanoporeParameters,
    ground_truth_model,
)
from repro.core.errors import PAPER_LONG_DELETION_LENGTHS

#: Every draw in this module descends from this seed — the suite is
#: fully deterministic, in CI and everywhere else.
MAIN_SEED = 4242

#: Chi-square critical values at p = 0.999 (upper tail).  A conforming
#: channel's statistic concentrates near its degrees of freedom, so
#: these bounds give < 0.1% flake probability while the 2x-perturbed
#: negative controls overshoot them by an order of magnitude.
CHI2_CRITICAL = {2: 13.816, 4: 18.467, 8: 26.124}


# --------------------------------------------------------------------- #
# Hand-rolled statistics
# --------------------------------------------------------------------- #


def chi_square(observed: dict, expected: dict[object, float]) -> float:
    """Pearson chi-square statistic over the keys of ``expected``."""
    statistic = 0.0
    for key, expected_count in expected.items():
        if expected_count <= 0:
            continue
        deviation = observed.get(key, 0) - expected_count
        statistic += deviation * deviation / expected_count
    return statistic


def negative_binomial_cdf(
    mean: float, dispersion: float, max_value: int
) -> list[float]:
    """CDF table of NB(mean, dispersion) on 0..max_value via ``lgamma``.

    PMF(k) = Gamma(k + r) / (Gamma(r) k!) * p^r * (1 - p)^k with
    r = dispersion and p = r / (r + mean) — the same Gamma-Poisson
    mixture :class:`NegativeBinomialCoverage` samples from.
    """
    r = dispersion
    p = r / (r + mean)
    log_p, log_q = math.log(p), math.log(1.0 - p)
    cdf, cumulative = [], 0.0
    for k in range(max_value + 1):
        log_pmf = (
            math.lgamma(k + r)
            - math.lgamma(r)
            - math.lgamma(k + 1)
            + r * log_p
            + k * log_q
        )
        cumulative += math.exp(log_pmf)
        cdf.append(min(cumulative, 1.0))
    return cdf


def ks_distance(samples: Sequence[int], cdf: Callable[[int], float]) -> float:
    """sup_k |empirical CDF - theoretical CDF| over the sample support."""
    n = len(samples)
    counts = Counter(samples)
    cumulative = 0
    distance = 0.0
    for value in sorted(counts):
        cumulative += counts[value]
        distance = max(distance, abs(cumulative / n - cdf(value)))
    return distance


# --------------------------------------------------------------------- #
# Measured channel statistics (generate -> align -> tally, as the
# paper's profiler does)
# --------------------------------------------------------------------- #


def measure_channel(
    parameters: NanoporeParameters | None = None,
    n_references: int = 150,
    coverage: int = 6,
    seed: int = MAIN_SEED,
) -> ErrorStatistics:
    """Transmit random strands through the ground-truth channel and tally
    maximum-likelihood edit operations — the measurement loop every
    conformance test below reads from."""
    model = ground_truth_model(parameters)
    reference_rng = random.Random(seed)
    channel = Channel(model, random.Random(seed + 1))
    alignment_rng = random.Random(seed + 2)
    statistics = ErrorStatistics()
    for _ in range(n_references):
        reference = random_strand(PAPER_STRAND_LENGTH, reference_rng)
        for copy in channel.transmit_many(reference, coverage):
            statistics.tally_pair(reference, copy, alignment_rng)
    return statistics


@pytest.fixture(scope="module", params=("python", "vectorised"))
def measured(request) -> ErrorStatistics:
    """Statistics of the calibrated channel (900 transmissions, ~99k
    base opportunities — every aggregate below has expected counts well
    into chi-square territory), measured under each channel backend:
    the vectorised sweep must pass the paper's statistical suite with
    the same seeds (it is bit-identical, so the statistics are too)."""
    set_channel_backend(request.param)
    try:
        return measure_channel()
    finally:
        set_channel_backend(None)


@pytest.fixture(scope="module")
def measured_2x() -> ErrorStatistics:
    """Negative control: every IDS rate doubled (the perturbation the
    suite must detect)."""
    doubled = NanoporeParameters(
        substitution_rate=2 * NanoporeParameters.substitution_rate,
        deletion_rate=2 * NanoporeParameters.deletion_rate,
        insertion_rate=2 * NanoporeParameters.insertion_rate,
        long_deletion_rate=2 * NanoporeParameters.long_deletion_rate,
    )
    return measure_channel(doubled, n_references=100, coverage=4)


# --------------------------------------------------------------------- #
# Conditional substitution matrix (Section 2.1 / 3.3.1)
# --------------------------------------------------------------------- #


class TestSubstitutionMatrix:
    def test_transitions_dominate_every_row(self, measured):
        """Paper: P(T->C), P(A->G) ~ 0.4 while other combinations sit
        near 0.01 — i.e. the transition partner takes the bulk of each
        row's substitution mass."""
        matrix = measured.substitution_matrix()
        for original, row in matrix.items():
            partner = TRANSITION[original]
            # Calibrated transition share is 0.8 (plus second-order mass
            # on T and A); 0.6 passes all seeds with a wide margin while
            # a uniform matrix (1/3 per cell) fails decisively.
            assert row[partner] > 0.6, (original, row)
            for base, probability in row.items():
                if base != partner:
                    assert probability < 0.2, (original, row)

    #: Chi-square bound for the measured substitution rows.  The pure
    #: sampling critical value is chi2(df=4, 0.999) = 18.5, but ML
    #: re-alignment systematically misattributes a small fraction of
    #: substitutions (observed statistics 4-20 across seeds), so the
    #: bound doubles the worst conforming observation.  The 2x-perturbed
    #: negative control scores ~520 — an order of magnitude above.
    MATRIX_CHI2_BOUND = 40.0

    def test_chi_square_against_calibrated_matrix(self, measured):
        """Chi-square of the G and C rows (the rows without second-order
        substitution mass) against the calibrated 0.8/0.1/0.1 split."""
        statistic = self._rows_chi_square(measured)
        assert statistic < self.MATRIX_CHI2_BOUND, statistic

    def test_negative_control_halved_transition_bias_fails(self):
        """2x-perturbed transition bias (0.8 -> 0.4) must blow past the
        same chi-square threshold — the test can actually fail."""
        perturbed = measure_channel(
            NanoporeParameters(transition_probability=0.4),
            n_references=100,
            coverage=4,
        )
        statistic = self._rows_chi_square(perturbed)
        assert statistic > self.MATRIX_CHI2_BOUND, statistic

    @staticmethod
    def _rows_chi_square(statistics: ErrorStatistics) -> float:
        transition_probability = NanoporeParameters.transition_probability
        statistic = 0.0
        for original in ("G", "C"):
            partner = TRANSITION[original]
            observed = {
                replacement: statistics.substitution_pairs[(original, replacement)]
                for replacement in "ACGT"
                if replacement != original
            }
            total = sum(observed.values())
            expected = {
                replacement: total
                * (
                    transition_probability
                    if replacement == partner
                    else (1.0 - transition_probability) / 2.0
                )
                for replacement in observed
            }
            statistic += chi_square(observed, expected)
        return statistic


# --------------------------------------------------------------------- #
# Negative-binomial coverage (Section 2.1 / 3.2)
# --------------------------------------------------------------------- #


class TestCoverageConformance:
    N_DRAWS = 20_000

    def _draws(self, dispersion: float = 4.0, seed: int = MAIN_SEED) -> list[int]:
        model = NegativeBinomialCoverage(PAPER_MEAN_COVERAGE, dispersion)
        return model.draw(self.N_DRAWS, random.Random(seed))

    def test_mean_matches_paper(self):
        draws = self._draws()
        mean = sum(draws) / len(draws)
        # Standard error of the mean is ~0.10 at 20k draws (NB variance
        # ~209); +-0.5 is a 5-sigma band around the paper's 26.97.
        assert abs(mean - PAPER_MEAN_COVERAGE) < 0.5, mean

    def test_ks_distance_to_negative_binomial_cdf(self):
        draws = self._draws()
        cdf = negative_binomial_cdf(
            PAPER_MEAN_COVERAGE, 4.0, max_value=max(draws)
        )
        distance = ks_distance(draws, lambda value: cdf[value])
        # Asymptotic KS critical value at alpha = 0.001 is
        # 1.95 / sqrt(n) ~ 0.0138; 0.02 adds margin (the discrete-CDF
        # statistic is conservative).  The sampler is exactly the NB's
        # Gamma-Poisson mixture, so the observed distance sits ~0.005.
        assert distance < 0.02, distance

    def test_negative_control_halved_dispersion_fails_ks(self):
        """2x heavier over-dispersion (4.0 -> 2.0) must be distinguishable
        from the calibrated distribution by the same KS test."""
        draws = self._draws(dispersion=2.0)
        cdf = negative_binomial_cdf(
            PAPER_MEAN_COVERAGE, 4.0, max_value=max(draws)
        )
        distance = ks_distance(draws, lambda value: cdf[value])
        assert distance > 0.02, distance

    def test_empty_cluster_rate_is_explicit(self):
        """The paper's dataset lost 16 of 10,000 clusters; the erasure
        wrapper must reproduce that rate on top of any inner model."""
        erasure_probability = PAPER_ERASURE_COUNT / PAPER_N_CLUSTERS
        model = ErasureCoverage(ConstantCoverage(10), erasure_probability)
        n = 50_000
        draws = model.draw(n, random.Random(MAIN_SEED))
        observed_rate = sum(1 for value in draws if value == 0) / n
        # Binomial standard error at p = 0.0016, n = 50k is ~0.00018;
        # +-0.0009 is a 5-sigma band.
        assert abs(observed_rate - erasure_probability) < 0.0009, observed_rate


# --------------------------------------------------------------------- #
# Aggregate IDS error rate (Section 3.2: ~5.9%)
# --------------------------------------------------------------------- #


class TestAggregateErrorRate:
    #: Measured-vs-paper tolerance.  ML re-alignment slightly compresses
    #: the true error count (canonicalisation merges adjacent ops), so
    #: the measured aggregate sits ~0.058 against the paper's 0.059;
    #: +-0.010 absorbs that bias plus sampling noise at ~99k
    #: opportunities while still failing decisively at 2x rates (~0.11).
    TOLERANCE = 0.010

    def test_aggregate_error_rate_matches_paper(self, measured):
        rate = measured.aggregate_error_rate()
        assert abs(rate - PAPER_AGGREGATE_ERROR) < self.TOLERANCE, rate

    def test_negative_control_doubled_rates_fail(self, measured_2x):
        rate = measured_2x.aggregate_error_rate()
        assert abs(rate - PAPER_AGGREGATE_ERROR) > self.TOLERANCE, rate
        assert rate > PAPER_AGGREGATE_ERROR

    def test_error_mix_is_substitution_dominated(self, measured):
        """Sanity on the IDS mix: substitutions are the most common
        single-base error, as in the paper's Table of rates."""
        rates = measured.aggregate_rates()
        assert rates["substitution"] > rates["deletion"] > rates["insertion"]


# --------------------------------------------------------------------- #
# Terminal skew (Section 3.3.2: end-of-strand errors ~2x the start)
# --------------------------------------------------------------------- #


class TestTerminalSkew:
    WINDOW = 10

    def test_end_errors_roughly_double_start_errors(self, measured):
        rates = measured.positional_error_rates()
        start = sum(rates[: self.WINDOW]) / self.WINDOW
        end = sum(rates[-self.WINDOW :]) / self.WINDOW
        ratio = end / start
        # The paper reports ~2x.  The window mean flattens the boost
        # peaks (the skew decays over ~5 positions), so the measured
        # ratio sits near 2; [1.4, 3.5] is wide enough for seed noise
        # yet excludes both a flat channel (~1.0) and an inverted skew.
        assert 1.4 < ratio < 3.5, ratio

    def test_ends_are_noisier_than_the_middle(self, measured):
        rates = measured.positional_error_rates()
        middle = rates[len(rates) // 2 - 5 : len(rates) // 2 + 5]
        middle_rate = sum(middle) / len(middle)
        end = sum(rates[-self.WINDOW :]) / self.WINDOW
        assert end > 1.3 * middle_rate


# --------------------------------------------------------------------- #
# Long-deletion run lengths (Section 3.3.1: 84/13/1.8/0.2/0.02 %)
# --------------------------------------------------------------------- #


class TestLongDeletionLengths:
    N_DRAWS = 50_000

    def _sampled_lengths(self, lengths: dict[int, float]) -> Counter:
        model = ground_truth_model()
        if lengths is not PAPER_LONG_DELETION_LENGTHS:
            from dataclasses import replace

            model = replace(model, long_deletion_lengths=lengths)
        rng = random.Random(MAIN_SEED)
        return Counter(
            model.draw_long_deletion_length(rng) for _ in range(self.N_DRAWS)
        )

    def test_sampler_matches_paper_distribution(self):
        observed = self._sampled_lengths(PAPER_LONG_DELETION_LENGTHS)
        total_weight = sum(PAPER_LONG_DELETION_LENGTHS.values())
        expected = {
            length: self.N_DRAWS * weight / total_weight
            for length, weight in PAPER_LONG_DELETION_LENGTHS.items()
        }
        statistic = chi_square(observed, expected)
        # df = 5 support points - 1 = 4; see CHI2_CRITICAL.  The rarest
        # length (6, expected ~10 draws) stays above the >=5 rule.
        assert statistic < CHI2_CRITICAL[4], statistic

    def test_negative_control_perturbed_lengths_fail(self):
        """Shift 2x of the paper's length-2 mass onto length 3 and the
        chi-square against the paper's distribution must explode."""
        perturbed = dict(PAPER_LONG_DELETION_LENGTHS)
        perturbed[2], perturbed[3] = 0.42, 0.55
        observed = self._sampled_lengths(perturbed)
        total_weight = sum(PAPER_LONG_DELETION_LENGTHS.values())
        expected = {
            length: self.N_DRAWS * weight / total_weight
            for length, weight in PAPER_LONG_DELETION_LENGTHS.items()
        }
        statistic = chi_square(observed, expected)
        assert statistic > CHI2_CRITICAL[4], statistic

    def test_measured_mean_run_length_matches_paper(self, measured):
        """End to end: runs measured from aligned reads average ~2.17
        bases (the paper's figure).  Alignment merges adjacent single
        deletions into runs occasionally, nudging the mean up; [1.9,
        2.6] brackets the paper value and the measurement bias."""
        mean_length = measured.mean_long_deletion_length()
        assert 1.9 < mean_length < 2.6, mean_length
