"""Tests for repro.jobs — the durable, checkpointed, resumable job engine.

The load-bearing property throughout: a job interrupted at *any* point
(worker death, engine SIGKILL, operator cancel) resumes from its journal
to a merged result **bit-identical** to the uninterrupted run.  The
kill-mid-shard property test exercises the hardest crash point (shard
computed but not yet checkpointed) at every shard index.
"""

from __future__ import annotations

import json
import os
import pickle
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.exceptions import ConfigError, JobError, ReproError
from repro.jobs import (
    DecorrelatedJitter,
    EXIT_CODES,
    JobEngine,
    JobJournal,
    JobQueue,
    JobResult,
    JobSpec,
    JobState,
    VALID_TRANSITIONS,
    backoff_schedule,
    check_transition,
    exit_code_for,
    resume_job,
    run_job,
)
from repro.sharding import run_fullscale

#: One small full-scale workload shared by every bit-identity test.
N_CLUSTERS = 12
SHARDS = 4
SEED = 7


def _spec(job_id: str, **overrides) -> JobSpec:
    defaults = dict(
        job_id=job_id,
        n_clusters=N_CLUSTERS,
        shards=SHARDS,
        workers=2,
        seed=SEED,
        backoff_base_s=0.01,
        backoff_cap_s=0.05,
    )
    defaults.update(overrides)
    return JobSpec(**defaults)


@pytest.fixture(scope="module")
def golden_summary():
    """The uninterrupted run every engine outcome must reproduce."""
    return run_fullscale(
        n_clusters=N_CLUSTERS, shards=SHARDS, workers=2, seed=SEED
    ).summary()


def _run_cli_job(root, *argv, env_extra=None, **popen_kwargs):
    """Run ``dnasim jobs ...`` in a child interpreter (chaos os._exit
    and signal delivery must not touch the pytest process)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p
        for p in (
            str(Path(__file__).resolve().parents[1] / "src"),
            env.get("PYTHONPATH"),
        )
        if p
    )
    if env_extra:
        env.update(env_extra)
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", "jobs", *argv],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
        **popen_kwargs,
    )


class TestJobSpec:
    def test_json_round_trip(self):
        spec = _spec("round-trip", algorithms=("majority", "bma"))
        assert JobSpec.from_json(spec.to_json()) == spec

    def test_round_trip_through_text_json(self):
        spec = _spec("text-json", shard_deadline_s=1.5)
        rebuilt = JobSpec.from_json(json.loads(json.dumps(spec.to_json())))
        assert rebuilt == spec
        assert rebuilt.algorithms == ("majority",)  # list -> tuple

    def test_unknown_fields_rejected(self):
        payload = _spec("newer").to_json()
        payload["from_the_future"] = 1
        with pytest.raises(JobError, match="unknown fields"):
            JobSpec.from_json(payload)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"job_id": ""},
            {"job_id": "a/b"},
            {"job_id": ".."},
            {"workload": "nonsense"},
            {"workload": "experiment:not_a_module"},
            {"n_clusters": 0},
            {"shards": 0},
            {"workers": 0},
            {"max_attempts": 0},
            {"backoff_base_s": -0.1},
            {"backoff_cap_s": 0.001},  # cap < base
            {"shard_deadline_s": 0.0},
            {"heartbeat_interval_s": 0.0},
            {"max_quarantined_shards": -1},
            {"shard_delay_s": -1.0},
            {"fault_severity": "apocalyptic"},
            {"align_backend": "bogus-kernel"},
            {"channel_backend": "bogus-kernel"},
            {"channel_parameters": {"substition_rate": 0.1}},  # typo'd field
        ],
    )
    def test_validation(self, overrides):
        with pytest.raises(ConfigError):
            _spec(overrides.pop("job_id", "bad"), **overrides)

    def test_scenario_fields_round_trip(self):
        spec = _spec(
            "scenario",
            fault_severity="mild",
            align_backend="python",
            channel_backend="python",
            channel_parameters={"substitution_rate": 0.04},
        )
        rebuilt = JobSpec.from_json(json.loads(json.dumps(spec.to_json())))
        assert rebuilt == spec
        assert rebuilt.channel_parameters == {"substitution_rate": 0.04}

    def test_pre_scenario_payloads_still_load(self):
        """Journals written before the scenario fields existed resume
        with the no-fault, ambient-backend defaults."""
        payload = _spec("legacy").to_json()
        for field in (
            "fault_severity",
            "align_backend",
            "channel_backend",
            "channel_parameters",
        ):
            payload.pop(field, None)
        spec = JobSpec.from_json(payload)
        assert spec.fault_severity == "none"
        assert spec.align_backend is None
        assert spec.channel_backend is None
        assert spec.channel_parameters is None

    def test_experiment_workload_accepted(self):
        spec = _spec("exp", workload="experiment:table_1_1")
        assert spec.experiment_name == "table_1_1"

    def test_without_chaos_strips_hooks(self):
        spec = _spec("chaos", kill_worker_at_shard=1, crash_engine_at_shard=2)
        clean = spec.without_chaos()
        assert clean.kill_worker_at_shard is None
        assert clean.crash_engine_at_shard is None
        assert clean.job_id == spec.job_id
        # Idempotent and identity-preserving when already clean.
        assert clean.without_chaos() is clean

    def test_exit_codes_are_distinct(self):
        assert exit_code_for(JobState.SUCCEEDED) == 0
        assert exit_code_for(JobState.DEGRADED) == 3
        assert exit_code_for(JobState.FAILED) == 4
        assert exit_code_for(JobState.CANCELLED) == 5
        assert len(set(EXIT_CODES.values())) == len(EXIT_CODES)


class TestStateMachine:
    def test_succeeded_is_final(self):
        assert VALID_TRANSITIONS[JobState.SUCCEEDED] == frozenset()
        with pytest.raises(JobError, match="invalid job state transition"):
            check_transition(JobState.SUCCEEDED, JobState.RUNNING)

    def test_failed_and_cancelled_reopen_to_running(self):
        check_transition(JobState.FAILED, JobState.RUNNING)
        check_transition(JobState.CANCELLED, JobState.RUNNING)

    def test_pending_cannot_finish_directly(self):
        with pytest.raises(JobError):
            check_transition(JobState.PENDING, JobState.SUCCEEDED)

    def test_terminal_property(self):
        assert JobState.SUCCEEDED.terminal
        assert JobState.FAILED.terminal
        assert JobState.CANCELLED.terminal
        assert not JobState.DEGRADED.terminal
        assert not JobState.RUNNING.terminal


class TestBackoff:
    def test_deterministic_per_seed_and_shard(self):
        first = backoff_schedule(3, 1, 0.05, 2.0, 6)
        again = backoff_schedule(3, 1, 0.05, 2.0, 6)
        other_shard = backoff_schedule(3, 2, 0.05, 2.0, 6)
        other_seed = backoff_schedule(4, 1, 0.05, 2.0, 6)
        assert first == again
        assert first != other_shard
        assert first != other_seed

    def test_delays_within_envelope(self):
        jitter = DecorrelatedJitter(0, 0, base_s=0.1, cap_s=1.0)
        previous = 0.1
        for _ in range(50):
            delay = jitter.next_delay()
            assert 0.1 <= delay <= 1.0
            assert delay <= max(previous * 3, 0.1) + 1e-12
            previous = delay

    def test_invalid_envelope_rejected(self):
        with pytest.raises(ValueError):
            DecorrelatedJitter(0, 0, base_s=-1.0, cap_s=1.0)
        with pytest.raises(ValueError):
            DecorrelatedJitter(0, 0, base_s=2.0, cap_s=1.0)


class TestJournal:
    def test_create_open_list(self, tmp_path):
        spec = _spec("j1")
        JobJournal.create(tmp_path, spec)
        journal = JobJournal.open(tmp_path, "j1")
        assert journal.spec() == spec
        assert journal.state() is JobState.PENDING
        assert JobJournal.list_jobs(tmp_path) == ["j1"]

    def test_duplicate_create_rejected(self, tmp_path):
        JobJournal.create(tmp_path, _spec("dup"))
        with pytest.raises(JobError, match="already exists"):
            JobJournal.create(tmp_path, _spec("dup"))

    def test_open_unknown_job_rejected(self, tmp_path):
        with pytest.raises(JobError, match="no job"):
            JobJournal.open(tmp_path, "ghost")

    def test_format_version_mismatch_rejected(self, tmp_path):
        journal = JobJournal.create(tmp_path, _spec("old"))
        document = json.loads((journal.job_dir / "job.json").read_text())
        document["format_version"] = 999
        (journal.job_dir / "job.json").write_text(json.dumps(document))
        with pytest.raises(JobError, match="format"):
            JobJournal.open(tmp_path, "old")

    def test_state_transitions_persist_and_validate(self, tmp_path):
        journal = JobJournal.create(tmp_path, _spec("s"))
        journal.set_state(JobState.RUNNING, pid=123)
        assert journal.state() is JobState.RUNNING
        assert journal.pid() == 123
        with pytest.raises(JobError, match="invalid job state transition"):
            JobJournal.open(tmp_path, "s").set_state(JobState.PENDING)
        # The failed transition must not have altered the document.
        assert journal.state() is JobState.RUNNING

    def test_event_log_replays_in_order(self, tmp_path):
        journal = JobJournal.create(tmp_path, _spec("e"))
        journal.append_event("alpha", n=1)
        journal.append_event("beta", n=2)
        names = [record["event"] for record in journal.events()]
        assert names == ["submitted", "alpha", "beta"]

    def test_torn_event_tail_tolerated(self, tmp_path):
        journal = JobJournal.create(tmp_path, _spec("torn"))
        journal.append_event("whole")
        with open(journal.job_dir / "events.jsonl", "a") as handle:
            handle.write('{"event": "torn-by-sigki')  # no newline, invalid
        events = [record["event"] for record in journal.events()]
        assert events == ["submitted", "whole"]

    def test_checkpoint_round_trip_exact(self, tmp_path):
        journal = JobJournal.create(tmp_path, _spec("c"))
        payload = ({"tuple-key": 1}, [1, 2.5, "x"], ("nested", (3, 4)))
        journal.write_checkpoint(2, payload, attempt=0)
        assert journal.read_checkpoint(2) == payload
        assert journal.checkpointed_shards(SHARDS) == {2: payload}

    def test_corrupt_checkpoint_treated_as_missing(self, tmp_path):
        journal = JobJournal.create(tmp_path, _spec("corrupt"))
        journal.write_checkpoint(0, {"fine": True}, attempt=0)
        path = journal.shards_dir / "shard-00000.json"
        document = json.loads(path.read_text())
        document["payload"] = document["payload"][:-8] + "AAAAAAAA"
        path.write_text(json.dumps(document))
        assert journal.read_checkpoint(0) is None  # digest mismatch
        assert not path.exists()  # discarded, shard will re-run

    def test_truncated_checkpoint_treated_as_missing(self, tmp_path):
        journal = JobJournal.create(tmp_path, _spec("trunc"))
        journal.write_checkpoint(1, {"fine": True}, attempt=0)
        path = journal.shards_dir / "shard-00001.json"
        path.write_text(path.read_text()[:20])
        assert journal.read_checkpoint(1) is None

    def test_quarantine_records_persist(self, tmp_path):
        journal = JobJournal.create(tmp_path, _spec("q"))
        journal.record_quarantine(3, attempts=2, reason="worker died")
        journal.record_quarantine(1, attempts=3, reason="watchdog")
        records = JobJournal.open(tmp_path, "q").quarantined()
        assert [q.shard_index for q in records] == [1, 3]
        assert records[1].reason == "worker died"

    def test_cancel_flag_round_trip(self, tmp_path):
        journal = JobJournal.create(tmp_path, _spec("cxl"))
        assert not journal.cancel_requested()
        journal.request_cancel()
        assert JobJournal.open(tmp_path, "cxl").cancel_requested()
        journal.clear_cancel_request()
        assert not journal.cancel_requested()

    def test_heartbeat_liveness(self, tmp_path):
        journal = JobJournal.create(tmp_path, _spec("hb"))
        assert not journal.engine_alive()
        journal.touch_heartbeat()
        assert journal.engine_alive()
        assert not journal.engine_alive(stale_after_s=0.0)


class TestEngineGolden:
    """The engine must reproduce run_fullscale bit for bit."""

    def test_clean_run_matches_run_fullscale(self, tmp_path, golden_summary):
        result = run_job(tmp_path, _spec("clean"))
        assert result.state is JobState.SUCCEEDED
        assert result.complete
        assert result.completed_shards == SHARDS
        assert result.result == golden_summary

    def test_worker_death_retried_identically(self, tmp_path, golden_summary):
        result = run_job(tmp_path, _spec("kill-w", kill_worker_at_shard=2))
        assert result.state is JobState.SUCCEEDED
        assert result.result == golden_summary
        journal = JobJournal.open(tmp_path, "kill-w")
        events = [record["event"] for record in journal.events()]
        assert "shard_failed" in events  # the injected death was seen

    def test_resume_of_succeeded_job_replays(self, tmp_path, golden_summary):
        run_job(tmp_path, _spec("replay"))
        replayed = resume_job(tmp_path, "replay")
        assert replayed.state is JobState.SUCCEEDED
        assert replayed.result == golden_summary
        # Still exactly SHARDS checkpoints — nothing re-ran.
        journal = JobJournal.open(tmp_path, "replay")
        starts = [
            record
            for record in journal.events()
            if record["event"] == "shard_started"
        ]
        assert len(starts) == SHARDS

    def test_running_job_needs_resume_flag(self, tmp_path):
        journal = JobJournal.create(tmp_path, _spec("midflight"))
        journal.set_state(JobState.RUNNING)
        with pytest.raises(JobError, match="use resume"):
            JobEngine(journal).run()


class TestDegradation:
    def test_exhausted_shard_quarantined_partial_result(self, tmp_path):
        result = run_job(
            tmp_path,
            _spec("degraded", kill_worker_at_shard=1, max_attempts=1),
        )
        assert result.state is JobState.DEGRADED
        assert not result.complete
        assert result.quarantined_indices == (1,)
        assert result.completed_shards == SHARDS - 1
        assert result.result["partial"] is True
        assert result.result["completed_shards"] == SHARDS - 1
        assert 0.0 < result.result["aggregate_error_rate"] < 1.0
        assert exit_code_for(result.state) == 3

    def test_no_partial_fails_fast(self, tmp_path):
        result = run_job(
            tmp_path,
            _spec(
                "strict",
                kill_worker_at_shard=0,
                max_attempts=1,
                allow_partial=False,
            ),
        )
        assert result.state is JobState.FAILED
        assert "exhausted" in result.error
        assert exit_code_for(result.state) == 4

    def test_max_quarantined_cap_enforced(self, tmp_path):
        result = run_job(
            tmp_path,
            _spec(
                "capped",
                kill_worker_at_shard=0,
                max_attempts=1,
                max_quarantined_shards=0,
            ),
        )
        assert result.state is JobState.FAILED

    def test_watchdog_kills_slow_shard(self, tmp_path):
        result = run_job(
            tmp_path,
            _spec(
                "watchdog",
                n_clusters=SHARDS,  # one tiny cluster per shard
                shard_delay_s=30.0,
                shard_deadline_s=0.3,
                max_attempts=1,
                workers=SHARDS,
            ),
        )
        assert result.state is JobState.DEGRADED
        assert len(result.quarantined) == SHARDS
        assert all("watchdog" in q.reason for q in result.quarantined)
        assert result.result is None  # nothing completed

    def test_degraded_job_resumes_to_success(self, tmp_path, golden_summary):
        run_job(tmp_path, _spec("heal", kill_worker_at_shard=1, max_attempts=1))
        healed = resume_job(tmp_path, "heal")
        assert healed.state is JobState.SUCCEEDED
        assert healed.result == golden_summary
        assert healed.quarantined == ()


class TestKillMidShardProperty:
    """Seeded property test: SIGKILL-equivalent engine death at *each*
    shard index, before that shard's checkpoint lands, must resume to a
    bit-identical result."""

    @pytest.mark.parametrize("crash_shard", range(SHARDS))
    def test_crash_at_every_shard_resumes_identically(
        self, tmp_path, golden_summary, crash_shard
    ):
        worker_count = 2
        victim = _run_cli_job(
            tmp_path,
            "submit",
            f"crash-{crash_shard}",
            "--jobs-dir",
            str(tmp_path),
            "--clusters",
            str(N_CLUSTERS),
            "--seed",
            str(SEED),
            "--crash-at-shard",
            str(crash_shard),
            env_extra={
                "REPRO_SHARDS": str(SHARDS),
                "REPRO_WORKERS": str(worker_count),
            },
        )
        assert victim.returncode == 137, victim.stderr
        journal = JobJournal.open(tmp_path, f"crash-{crash_shard}")
        assert journal.state() is JobState.RUNNING  # stale, mid-flight
        before = set(journal.checkpointed_shards(SHARDS))
        assert crash_shard not in before  # died before its checkpoint
        resumed = resume_job(tmp_path, f"crash-{crash_shard}")
        assert resumed.state is JobState.SUCCEEDED
        assert resumed.complete
        assert resumed.result == golden_summary
        # The chaos hook must not survive into the resumed spec.
        assert journal.spec().crash_engine_at_shard is None


class TestSigtermCheckpointsAndCancels:
    def test_sigterm_mid_run_leaves_resumable_journal(
        self, tmp_path, golden_summary
    ):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p
            for p in (
                str(Path(__file__).resolve().parents[1] / "src"),
                env.get("PYTHONPATH"),
            )
            if p
        )
        env["REPRO_SHARDS"] = str(SHARDS)
        env["REPRO_WORKERS"] = "2"  # golden summary embeds workers=2
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "jobs",
                "submit",
                "sigterm",
                "--jobs-dir",
                str(tmp_path),
                "--clusters",
                str(N_CLUSTERS),
                "--seed",
                str(SEED),
                "--shard-delay",
                "30",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.monotonic() + 30
            journal = None
            while time.monotonic() < deadline:
                try:
                    journal = JobJournal.open(tmp_path, "sigterm")
                    if journal.state() is JobState.RUNNING:
                        break
                except JobError:
                    pass
                time.sleep(0.1)
            assert journal is not None and journal.state() is JobState.RUNNING
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
        assert process.returncode == EXIT_CODES[JobState.CANCELLED]
        journal = JobJournal.open(tmp_path, "sigterm")
        assert journal.state() is JobState.CANCELLED
        # And the journal re-opens cleanly into a full run.
        resumed = resume_job(tmp_path, "sigterm")
        assert resumed.state is JobState.SUCCEEDED
        assert resumed.result == golden_summary


class TestJobQueue:
    def test_submit_wait_status_round_trip(self, tmp_path, golden_summary):
        with JobQueue(root=tmp_path, max_workers=2) as queue:
            job_id = queue.submit(_spec("queued"))
            result = queue.wait(job_id, timeout=120)
            assert result.state is JobState.SUCCEEDED
            assert result.result == golden_summary
            status = queue.status(job_id)
            assert status["state"] == "succeeded"
            assert status["result"]["complete"] is True
            assert queue.states() == {"queued": JobState.SUCCEEDED}

    def test_cancel_stops_running_job(self, tmp_path):
        with JobQueue(root=tmp_path, max_workers=1) as queue:
            job_id = queue.submit(
                _spec("slow", n_clusters=SHARDS, workers=1, shard_delay_s=30.0)
            )
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if JobJournal.open(tmp_path, job_id).state() is JobState.RUNNING:
                    break
                time.sleep(0.05)
            queue.cancel(job_id)
            result = queue.wait(job_id, timeout=60)
            assert result.state is JobState.CANCELLED

    def test_queue_survives_process_boundary(self, tmp_path, golden_summary):
        """Round-trip job state across 'process restarts': one queue
        submits and dies; a fresh queue (fresh process, in spirit) sees
        the journal and can resume/report it."""
        with JobQueue(root=tmp_path, max_workers=1) as queue:
            queue.submit(_spec("durable"))
            queue.wait("durable", timeout=120)
        reborn = JobQueue(root=tmp_path, max_workers=1)
        try:
            assert reborn.status("durable")["state"] == "succeeded"
            reborn.resume("durable")
            assert reborn.wait("durable", timeout=60).result == golden_summary
        finally:
            reborn.shutdown()

    def test_wait_for_unknown_job_rejected(self, tmp_path):
        with JobQueue(root=tmp_path) as queue:
            with pytest.raises(JobError, match="not scheduled"):
                queue.wait("never-submitted")

    def test_list_jobs(self, tmp_path):
        with JobQueue(root=tmp_path, max_workers=2) as queue:
            queue.submit(_spec("a"))
            queue.submit(_spec("b"))
            queue.wait("a", timeout=120)
            queue.wait("b", timeout=120)
            listed = {entry["job_id"]: entry["state"] for entry in queue.list_jobs()}
            assert listed == {"a": "succeeded", "b": "succeeded"}


class TestExperimentWorkload:
    def test_experiment_job_checkpoints_and_replays(self, tmp_path):
        spec = _spec("table", workload="experiment:table_1_1")
        result = run_job(tmp_path, spec)
        assert result.state is JobState.SUCCEEDED
        assert result.n_shards == 1
        # Replay: the checkpoint answers without re-running the module.
        replay = resume_job(tmp_path, "table")
        assert replay.state is JobState.SUCCEEDED
        assert replay.result == result.result


class TestCliExitCodes:
    def test_submit_success_exit_zero(self, tmp_path, golden_summary):
        from repro.cli import main

        code = main(
            [
                "jobs",
                "submit",
                "ok",
                "--jobs-dir",
                str(tmp_path),
                "--clusters",
                str(N_CLUSTERS),
                "--seed",
                str(SEED),
            ]
        )
        assert code == 0
        summary = json.loads(
            (tmp_path / "ok" / "result.json").read_text()
        )
        assert summary["state"] == "succeeded"

    def test_submit_degraded_exit_three(self, tmp_path):
        from repro.cli import main

        code = main(
            [
                "--shards",
                str(SHARDS),
                "jobs",
                "submit",
                "partial",
                "--jobs-dir",
                str(tmp_path),
                "--clusters",
                str(N_CLUSTERS),
                "--seed",
                str(SEED),
                "--kill-worker-at",
                "1",
                "--max-attempts",
                "1",
            ]
        )
        assert code == 3

    def test_duplicate_submit_is_usage_error(self, tmp_path):
        from repro.cli import main

        argv = [
            "jobs",
            "submit",
            "twice",
            "--jobs-dir",
            str(tmp_path),
            "--clusters",
            "4",
        ]
        assert main(argv) == 0
        assert main(argv) == 2  # JobError -> usage-error convention

    def test_status_and_cancel_and_list(self, tmp_path, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "jobs",
                    "submit",
                    "st",
                    "--jobs-dir",
                    str(tmp_path),
                    "--clusters",
                    "4",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["jobs", "status", "st", "--jobs-dir", str(tmp_path)]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["state"] == "succeeded"
        assert main(["jobs", "cancel", "st", "--jobs-dir", str(tmp_path)]) == 0
        assert main(["jobs", "list", "--jobs-dir", str(tmp_path)]) == 0
        assert "st" in capsys.readouterr().out


class TestKillResumeChaosMode:
    def test_run_kill_resume_asserts_bit_identity(self, tmp_path):
        from repro.experiments import chaos

        result = chaos.run_kill_resume(
            n_clusters=N_CLUSTERS, shards=SHARDS, seed=SEED, verbose=False,
            jobs_root=str(tmp_path),
        )
        assert result["bit_identical"] is True
        assert result["crash_exit"] == 137
        assert result["state_after_crash"] == "running"
        assert result["state_after_resume"] == "succeeded"
        assert result["crash_shard"] not in result["checkpoints_before_resume"]
