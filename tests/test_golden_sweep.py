"""Golden-file regression for the committed small sweep spec.

``tests/golden/sweep_small.toml`` expands to eight cells (two channels ×
two reconstructors × two fault severities at coverage 5);
``tests/golden/sweep_cells.json`` pins every cell's merged result.  The
tests assert **exact equality** for four execution strategies — serial,
forced process-pool parallelism, a sharded spec variant, and a sweep
SIGKILLed mid-run then resumed — because scenario cells are pure
functions of their spec and the merge is associative (the
shard-count-invariance contract of DESIGN.md, now at sweep granularity).

Partition metadata (``n_shards``/``workers``) is stripped before
comparison: it describes how a run executed, not what it computed.

Regenerate after an intentional physics change::

    PYTHONPATH=src python tests/golden/regen_sweep_cells.py
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

from repro.observability.bench import assert_stamped
from repro.scenarios import SweepStore, load_sweep_spec, resume_sweep, run_sweep

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
SPEC_PATH = GOLDEN_DIR / "sweep_small.toml"

#: Result keys describing execution layout, stripped before comparison.
PARTITION_KEYS = ("n_shards", "workers")


def _golden() -> dict:
    return json.loads((GOLDEN_DIR / "sweep_cells.json").read_text())


def _normalise(payload) -> dict:
    return json.loads(json.dumps(payload, sort_keys=True))


def _results_by_index(sweep_dir) -> dict:
    """Per-cell normalised results, keyed like the golden file."""
    cells = {}
    for record in SweepStore(sweep_dir).cell_records():
        result = dict(record["result"])
        for key in PARTITION_KEYS:
            result.pop(key, None)
        cells[f"{record['cell_index']:03d}"] = _normalise(result)
    return cells


def _golden_results() -> dict:
    return {
        index: _normalise(entry["result"])
        for index, entry in _golden().items()
    }


def _assert_matches_golden(sweep_dir) -> None:
    assert _results_by_index(sweep_dir) == _golden_results()


class TestSerialMatchesGolden:
    def test_full_sweep(self, tmp_path):
        spec = load_sweep_spec(SPEC_PATH)
        outcome = run_sweep(spec, tmp_path / "sweep")
        assert outcome.exit_code == 0
        assert len(outcome.cells) == len(_golden())
        _assert_matches_golden(tmp_path / "sweep")

    def test_golden_scenarios_match_expansion(self):
        """The committed golden was generated from *this* spec."""
        spec = load_sweep_spec(SPEC_PATH)
        expected = {
            f"{cell.index:03d}": _normalise(cell.scenario())
            for cell in spec.expand()
        }
        recorded = {
            index: entry["scenario"] for index, entry in _golden().items()
        }
        assert recorded == expected


def _variant(base, **axis_overrides):
    """The golden spec with some axes overridden (e.g. a shard layout)."""
    return type(base)(
        name=base.name,
        seed=base.seed,
        n_clusters=base.n_clusters,
        strand_length=base.strand_length,
        max_copies=base.max_copies,
        order=base.order,
        axes={**base.axes, **axis_overrides},
        channels=base.channels,
    )


class TestShardedVariantMatchesGolden:
    """The same matrix with every cell split across 2 shards, executed
    sequentially, computes identical numbers."""

    def test_full_sweep(self, tmp_path):
        spec = _variant(load_sweep_spec(SPEC_PATH), shards=(2,), workers=(1,))
        outcome = run_sweep(spec, tmp_path / "sweep")
        assert outcome.exit_code == 0
        _assert_matches_golden(tmp_path / "sweep")


class TestParallelMatchesGolden:
    """2 shards dispatched to 2 concurrent worker processes reproduce
    the goldens exactly — sweep-level process parallelism never changes
    a number."""

    def test_full_sweep(self, tmp_path):
        spec = _variant(load_sweep_spec(SPEC_PATH), shards=(2,), workers=(2,))
        outcome = run_sweep(spec, tmp_path / "sweep")
        assert outcome.exit_code == 0
        _assert_matches_golden(tmp_path / "sweep")


class TestResumedAfterKillMatchesGolden:
    """A sweep killed mid-run (``os._exit`` after two cells executed,
    before the second record lands) resumes to the same bytes."""

    def test_kill_then_resume(self, tmp_path):
        sweep_dir = tmp_path / "sweep"
        script = (
            "from repro.scenarios import load_sweep_spec, run_sweep\n"
            f"spec = load_sweep_spec({str(SPEC_PATH)!r})\n"
            f"run_sweep(spec, {str(sweep_dir)!r}, crash_after_cells=2)\n"
        )
        completed = subprocess.run(
            [sys.executable, "-c", script],
            cwd=pathlib.Path(__file__).parent.parent,
            env={**os.environ, "PYTHONPATH": "src"},
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert completed.returncode == 137, completed.stderr
        # The kill landed between the job journal and the cell record:
        # at most one record is missing relative to executed cells.
        recorded = len(SweepStore(sweep_dir).cell_records())
        assert recorded < len(_golden())

        outcome = resume_sweep(sweep_dir)
        assert outcome.exit_code == 0
        # The first cell completed record + journal; it must be reused,
        # and the killed cell replayed from its journal, not recomputed.
        assert outcome.reused >= 1
        _assert_matches_golden(sweep_dir)


class TestRecordsConform:
    """Every record written by a sweep carries a valid provenance stamp."""

    def test_all_records_stamped(self, tmp_path):
        spec = load_sweep_spec(SPEC_PATH)
        run_sweep(spec, tmp_path / "sweep")
        store = SweepStore(tmp_path / "sweep")
        assert_stamped(store.manifest)
        records = store.cell_records()
        assert len(records) == len(_golden())
        for record in records:
            assert_stamped(record)
