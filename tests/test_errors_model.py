"""Unit tests for repro.core.errors (ErrorModel, SecondOrderError)."""

from __future__ import annotations

import pytest

from repro.core.errors import (
    PAPER_LONG_DELETION_LENGTHS,
    ErrorModel,
    SecondOrderError,
    transition_biased_substitution_matrix,
    uniform_substitution_matrix,
)
from repro.core.spatial import TerminalSkew, UniformSpatial


class TestSubstitutionMatrices:
    def test_uniform_matrix_rows_sum_to_one(self):
        matrix = uniform_substitution_matrix()
        for original, row in matrix.items():
            assert original not in row
            assert sum(row.values()) == pytest.approx(1.0)

    def test_transition_matrix_favours_partner(self):
        matrix = transition_biased_substitution_matrix(0.8)
        assert matrix["A"]["G"] == pytest.approx(0.8)
        assert matrix["T"]["C"] == pytest.approx(0.8)
        assert matrix["A"]["C"] == pytest.approx(0.1)

    def test_transition_matrix_rows_sum_to_one(self):
        matrix = transition_biased_substitution_matrix(0.6)
        for row in matrix.values():
            assert sum(row.values()) == pytest.approx(1.0)

    def test_transition_probability_validated(self):
        with pytest.raises(ValueError):
            transition_biased_substitution_matrix(1.2)


class TestSecondOrderError:
    def test_deletion_description(self):
        error = SecondOrderError("deletion", "A", "", 0.01)
        assert error.describe() == "del A"

    def test_insertion_description(self):
        error = SecondOrderError("insertion", "", "G", 0.01)
        assert error.describe() == "ins G"

    def test_substitution_description(self):
        error = SecondOrderError("substitution", "G", "C", 0.01)
        assert error.describe() == "sub G->C"

    @pytest.mark.parametrize(
        "kind, base, replacement",
        [
            ("deletion", "", ""),  # deletion needs a base
            ("deletion", "A", "C"),  # deletion must not have a replacement
            ("insertion", "A", "G"),  # insertion must not have a base
            ("insertion", "", ""),  # insertion needs a replacement
            ("substitution", "A", "A"),  # replacement must differ
            ("substitution", "A", ""),  # substitution needs a replacement
            ("flip", "A", "C"),  # unknown kind
        ],
    )
    def test_invalid_specs_rejected(self, kind, base, replacement):
        with pytest.raises(ValueError):
            SecondOrderError(kind, base, replacement, 0.01)

    def test_rate_out_of_range(self):
        with pytest.raises(ValueError):
            SecondOrderError("deletion", "A", "", 1.5)


class TestErrorModel:
    def test_scalar_rates_expand_per_base(self):
        model = ErrorModel.naive(0.01, 0.02, 0.03)
        assert model.insertion_rate == {base: 0.01 for base in "ACGT"}
        assert model.deletion_rate["T"] == 0.02

    def test_dict_rates_fill_missing_bases(self):
        model = ErrorModel(
            insertion_rate={"A": 0.1},
            deletion_rate=0.0,
            substitution_rate=0.0,
        )
        assert model.insertion_rate["C"] == 0.0

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ErrorModel.naive(1.5, 0.0, 0.0)

    def test_uniform_splits_rate_evenly(self):
        model = ErrorModel.uniform(0.15)
        assert model.insertion_rate["A"] == pytest.approx(0.05)
        assert model.aggregate_error_rate() == pytest.approx(0.15)

    def test_first_order_rate_sums_components(self):
        model = ErrorModel.naive(0.01, 0.02, 0.03)
        assert model.first_order_rate("A") == pytest.approx(0.06)

    def test_aggregate_counts_long_deletions_by_length(self):
        model = ErrorModel(
            insertion_rate=0.0,
            deletion_rate=0.0,
            substitution_rate=0.0,
            long_deletion_rate=0.01,
            long_deletion_lengths={2: 1.0},
        )
        assert model.aggregate_error_rate() == pytest.approx(0.02)

    def test_aggregate_includes_second_order(self):
        model = ErrorModel.naive(0.0, 0.0, 0.0).with_second_order(
            (SecondOrderError("deletion", "A", "", 0.04),)
        )
        # Rate applies only at A positions: a quarter of the strand.
        assert model.aggregate_error_rate() == pytest.approx(0.01)

    def test_with_spatial_returns_new_model(self):
        model = ErrorModel.naive(0.01, 0.01, 0.01)
        skewed = model.with_spatial(TerminalSkew())
        assert isinstance(model.spatial, UniformSpatial)
        assert isinstance(skewed.spatial, TerminalSkew)

    def test_scaled_multiplies_all_rates(self):
        model = ErrorModel(
            insertion_rate=0.01,
            deletion_rate=0.02,
            substitution_rate=0.03,
            long_deletion_rate=0.001,
            second_order_errors=(
                SecondOrderError("deletion", "A", "", 0.004),
            ),
        )
        scaled = model.scaled(2.0)
        assert scaled.insertion_rate["A"] == pytest.approx(0.02)
        assert scaled.long_deletion_rate == pytest.approx(0.002)
        assert scaled.second_order_errors[0].rate == pytest.approx(0.008)

    def test_scaled_negative_raises(self):
        with pytest.raises(ValueError):
            ErrorModel.naive(0.01, 0.01, 0.01).scaled(-1.0)

    def test_expected_long_deletion_length_paper_values(self):
        model = ErrorModel.naive(0.0, 0.0, 0.0)
        expected = model.expected_long_deletion_length()
        # The paper reports a mean long-deletion length of 2.17.
        assert expected == pytest.approx(2.17, abs=0.05)

    def test_long_deletion_length_below_two_rejected(self):
        with pytest.raises(ValueError):
            ErrorModel(
                insertion_rate=0.0,
                deletion_rate=0.0,
                substitution_rate=0.0,
                long_deletion_lengths={1: 1.0},
            )

    def test_draw_substitution_respects_matrix(self, rng):
        model = ErrorModel(
            insertion_rate=0.0,
            deletion_rate=0.0,
            substitution_rate=0.1,
            substitution_matrix={
                "A": {"G": 1.0},
                "C": {"T": 1.0},
                "G": {"A": 1.0},
                "T": {"C": 1.0},
            },
        )
        assert model.draw_substitution("A", rng) == "G"

    def test_draw_long_deletion_length_in_support(self, rng):
        model = ErrorModel.naive(0.0, 0.0, 0.0)
        for _ in range(50):
            assert model.draw_long_deletion_length(rng) in PAPER_LONG_DELETION_LENGTHS

    def test_burst_parameters_validated(self):
        with pytest.raises(ValueError):
            ErrorModel.naive(0.0, 0.0, 0.0).__class__(
                insertion_rate=0.0,
                deletion_rate=0.0,
                substitution_rate=0.0,
                burst_min_length=0,
            )
        with pytest.raises(ValueError):
            ErrorModel(
                insertion_rate=0.0,
                deletion_rate=0.0,
                substitution_rate=0.0,
                burst_continue=1.0,
            )
