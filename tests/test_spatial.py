"""Unit and property tests for repro.core.spatial."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.spatial import (
    AShapedSpatial,
    HistogramSpatial,
    PaperTerminalSkew,
    TerminalSkew,
    UniformSpatial,
    VShapedSpatial,
)

ALL_DISTRIBUTIONS = [
    UniformSpatial(),
    TerminalSkew(),
    TerminalSkew(start_boost=0.0, end_boost=3.0, decay=4.0),
    AShapedSpatial(),
    VShapedSpatial(),
    HistogramSpatial([1.0, 2.0, 3.0, 2.0, 1.0]),
    PaperTerminalSkew(),
]


@pytest.mark.parametrize("distribution", ALL_DISTRIBUTIONS, ids=repr)
class TestNormalisationInvariants:
    """Weights always have mean 1.0: spatial distributions redistribute
    errors without changing the aggregate rate (Section 3.3.2/3.3.3)."""

    @pytest.mark.parametrize("length", [1, 2, 5, 110])
    def test_mean_is_one(self, distribution, length):
        weights = distribution.weights(length)
        assert len(weights) == length
        assert sum(weights) / length == pytest.approx(1.0)

    def test_weights_non_negative(self, distribution):
        assert all(weight >= 0 for weight in distribution.weights(50))

    def test_zero_length(self, distribution):
        assert distribution.weights(0) == []

    def test_negative_length_raises(self, distribution):
        with pytest.raises(ValueError):
            distribution.weights(-1)

    def test_weight_accessor_matches_weights(self, distribution):
        weights = distribution.weights(20)
        assert distribution.weight(3, 20) == weights[3]


class TestUniform:
    def test_all_weights_equal(self):
        assert UniformSpatial().weights(7) == [1.0] * 7


class TestTerminalSkew:
    def test_ends_heavier_than_middle(self):
        weights = TerminalSkew().weights(110)
        assert weights[0] > weights[55]
        assert weights[-1] > weights[55]

    def test_end_boost_controls_asymmetry(self):
        weights = TerminalSkew(start_boost=2.0, end_boost=8.0).weights(110)
        assert weights[-1] > weights[0]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TerminalSkew(start_boost=-1.0)
        with pytest.raises(ValueError):
            TerminalSkew(decay=0.0)


class TestShapes:
    def test_a_shape_peaks_in_middle(self):
        weights = AShapedSpatial().weights(111)
        assert weights[55] == max(weights)
        assert weights[0] == pytest.approx(weights[-1])

    def test_v_shape_peaks_at_ends(self):
        weights = VShapedSpatial().weights(111)
        assert weights[0] == max(weights)
        assert weights[55] == min(weights)

    def test_a_and_v_are_mirror_images(self):
        a_raw = AShapedSpatial().raw_weights(20)
        v_raw = VShapedSpatial().raw_weights(20)
        assert all(
            a + v == pytest.approx(1.0) for a, v in zip(a_raw, v_raw)
        )

    def test_single_position(self):
        assert AShapedSpatial().weights(1) == [1.0]
        assert VShapedSpatial().weights(1) == [1.0]


class TestHistogram:
    def test_same_length_preserves_shape(self):
        weights = HistogramSpatial([1.0, 3.0]).weights(2)
        assert weights == [0.5, 1.5]

    def test_resampling_interpolates(self):
        weights = HistogramSpatial([0.0, 1.0]).weights(3)
        # Middle position interpolates to 0.5 before normalisation.
        assert weights[1] == pytest.approx(1.0)

    def test_empty_histogram_raises(self):
        with pytest.raises(ValueError):
            HistogramSpatial([])

    def test_negative_histogram_raises(self):
        with pytest.raises(ValueError):
            HistogramSpatial([1.0, -0.5])

    @given(
        st.lists(st.floats(0.0, 10.0), min_size=2, max_size=30),
        st.integers(1, 60),
    )
    def test_resampling_always_normalises(self, histogram, length):
        distribution = HistogramSpatial(histogram)
        weights = distribution.weights(length)
        assert len(weights) == length
        assert sum(weights) / length == pytest.approx(1.0)


class TestPaperTerminalSkew:
    def test_exactly_three_positions_boosted(self):
        raw = PaperTerminalSkew(5.0, 10.0).raw_weights(50)
        assert raw[0] == 5.0
        assert raw[1] == 5.0
        assert raw[-1] == 10.0
        assert all(weight == 1.0 for weight in raw[2:-1])

    def test_invalid_multiplier(self):
        with pytest.raises(ValueError):
            PaperTerminalSkew(start_multiplier=-2.0)
