"""Shim for legacy editable installs (`pip install -e .`).

All project metadata lives in pyproject.toml; this file only exists so
environments with an older setuptools/pip (no PEP 660 editable support)
can fall back to `setup.py develop`.
"""

from setuptools import setup

setup()
